(* Message-level signatures: what Extractocol outputs for each request and
   response (§1: signatures for URI, query string, request method, header,
   and body), plus matching of signatures against concrete traffic. *)

module Http = Extr_httpmodel.Http
module Uri = Extr_httpmodel.Uri
module Json = Extr_httpmodel.Json
module Xml = Extr_httpmodel.Xml

type body_sig =
  | Bnone
  | Bquery of (string * Strsig.t) list  (** form/query-string body *)
  | Bjson of Jsonsig.t
  | Bxml of Xmlsig.t
  | Btext of Strsig.t
  | Bopaque  (** body exists but the slice reveals nothing about it *)

type request_sig = {
  rs_meth : Http.meth;
  rs_uri : Strsig.t;  (** full URI signature, query string included *)
  rs_headers : (string * Strsig.t) list;  (** app-set headers, e.g. User-Agent *)
  rs_body : body_sig;
}

(** Where response data flows after parsing (§2: e.g. media player, file,
    SQLite database) — the "how network data is consumed" output. *)
type consumer =
  | To_media_player
  | To_database of string  (** table name *)
  | To_ui
  | To_file
  | To_heap  (** retained in fields for later requests *)

let consumer_to_string = function
  | To_media_player -> "media-player"
  | To_database t -> "database:" ^ t
  | To_ui -> "ui"
  | To_file -> "file"
  | To_heap -> "heap"

type response_sig = { ps_body : body_sig; ps_consumers : consumer list }

let body_sig_kind = function
  | Bnone -> "none"
  | Bquery _ -> "query"
  | Bjson _ -> "json"
  | Bxml _ -> "xml"
  | Btext _ -> "text"
  | Bopaque -> "opaque"

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let pp_body_sig fmt = function
  | Bnone -> Fmt.string fmt "-"
  | Bquery kvs ->
      let pp_kv fmt (k, v) = Fmt.pf fmt "%s=%s" k (Strsig.to_regex v) in
      Fmt.pf fmt "%a" (Fmt.list ~sep:(Fmt.any "&") pp_kv) kvs
  | Bjson j -> Jsonsig.pp fmt j
  | Bxml x -> Xmlsig.pp fmt x
  | Btext s -> Fmt.string fmt (Strsig.to_regex s)
  | Bopaque -> Fmt.string fmt ".*"

let pp_request_sig fmt r =
  Fmt.pf fmt "%s %s" (Http.meth_to_string r.rs_meth) (Strsig.to_regex r.rs_uri);
  match r.rs_body with
  | Bnone -> ()
  | b -> Fmt.pf fmt " body: %a" pp_body_sig b

let pp_response_sig fmt p =
  Fmt.pf fmt "%a" pp_body_sig p.ps_body;
  match p.ps_consumers with
  | [] -> ()
  | cs ->
      Fmt.pf fmt " -> %a"
        (Fmt.list ~sep:Fmt.comma (Fmt.of_to_string consumer_to_string))
        cs

(* ------------------------------------------------------------------ *)
(* Matching against concrete traffic                                  *)
(* ------------------------------------------------------------------ *)

let body_matches (s : body_sig) (b : Http.body) =
  match (s, b) with
  | Bnone, Http.No_body -> true
  | Bnone, _ -> false
  | Bopaque, _ -> true
  | Bquery spec, Http.Query kvs ->
      List.for_all
        (fun (k, vs) ->
          match List.assoc_opt k kvs with
          | Some v -> Strsig.matches vs v
          | None -> false)
        spec
  | Bjson js, Http.Json v -> Jsonsig.admits js v
  | Bxml xs, Http.Xml e -> Xmlsig.admits xs e
  | Btext ts, Http.Text t -> Strsig.matches ts t
  | Btext ts, Http.Binary t -> Strsig.matches ts t
  | (Bquery _ | Bjson _ | Bxml _ | Btext _), _ -> false

(** Full request match: method equality, URI regex match (through the
    compiled regex engine, validating the emitted regex as in §5.1's
    "signature validity" check), headers, and body. *)
let request_matches (s : request_sig) (r : Http.request) =
  s.rs_meth = r.req_meth
  && (let uri_string = Uri.to_string r.req_uri in
      Regex.string_matches ~pattern:(Strsig.to_regex s.rs_uri) uri_string)
  && List.for_all
       (fun (name, vs) ->
         match Http.header name r.req_headers with
         | Some v -> Strsig.matches vs v
         | None -> false)
       s.rs_headers
  && body_matches s.rs_body r.req_body

let response_matches (s : response_sig) (r : Http.response) =
  body_matches s.ps_body r.resp_body

(* ------------------------------------------------------------------ *)
(* Keyword extraction (Figure 7)                                      *)
(* ------------------------------------------------------------------ *)

(** Constant keywords of a body signature: query-string keys, JSON keys,
    XML tags/attributes. *)
let body_keywords = function
  | Bnone | Bopaque -> []
  | Bquery kvs -> List.map fst kvs
  | Bjson j -> Jsonsig.distinct_keys j
  | Bxml x -> Xmlsig.distinct_keywords x
  | Btext s -> Strsig.keywords s

(** Keywords contributed by the query-string portion of the URI signature:
    keys of [k=v] pairs appearing in literal fragments after '?'. *)
let uri_query_keywords (uri_sig : Strsig.t) =
  let lits = Strsig.literals uri_sig in
  let full = String.concat "\x00" lits in
  match String.index_opt full '?' with
  | None -> []
  | Some i ->
      let qs = String.sub full (i + 1) (String.length full - i - 1) in
      String.split_on_char '&' qs
      |> List.concat_map (fun kv ->
             match String.index_opt kv '=' with
             | Some j when j > 0 -> [ String.sub kv 0 j ]
             | Some _ | None -> [])
      |> List.filter (fun k -> k <> "" && not (String.contains k '\x00'))
      |> List.sort_uniq String.compare

let request_body_keywords (s : request_sig) =
  List.sort_uniq String.compare (body_keywords s.rs_body @ uri_query_keywords s.rs_uri)

(* ------------------------------------------------------------------ *)
(* Byte accounting (Table 2)                                          *)
(* ------------------------------------------------------------------ *)

(** Account the bytes of a concrete body against a body signature:
    returns [(r_k, r_v, r_n)]. *)
let body_byte_account (s : body_sig) (b : Http.body) =
  let total body = String.length (Http.body_to_string body) in
  match (s, b) with
  | Bjson js, Http.Json v -> Jsonsig.byte_account js v
  | Bxml xs, Http.Xml e -> Xmlsig.byte_account xs e
  | Bquery spec, Http.Query kvs ->
      let bk = ref 0 and bv = ref 0 and bn = ref 0 in
      List.iteri
        (fun i (k, v) ->
          let sep = if i > 0 then 1 else 0 in
          let v_enc = Uri.percent_encode v in
          match List.assoc_opt k spec with
          | Some vs -> (
              bk := !bk + sep + String.length k + 1;
              match Strsig.byte_counts vs v_enc with
              | Some (c, w) ->
                  bk := !bk + c;
                  bv := !bv + w
              | None -> bv := !bv + String.length v_enc)
          | None -> bn := !bn + sep + String.length k + 1 + String.length v_enc)
        kvs;
      (!bk, !bv, !bn)
  | Btext ts, (Http.Text t | Http.Binary t) -> (
      match Strsig.byte_counts ts t with
      | Some (c, w) -> (c, w, 0)
      | None -> (0, 0, String.length t))
  | (Bnone | Bopaque), b -> (0, 0, total b)
  | (Bquery _ | Bjson _ | Bxml _ | Btext _), b -> (0, 0, total b)

(** Account the bytes of a concrete URI against the URI signature. *)
let uri_byte_account (s : Strsig.t) (u : Uri.t) =
  match Strsig.byte_counts s (Uri.to_string u) with
  | Some (c, w) -> (c, w, 0)
  | None -> (0, 0, String.length (Uri.to_string u))
