lib/fuzz/fuzz.mli: Extr_apk Extr_corpus Extr_httpmodel
