lib/fuzz/fuzz.ml: Extr_apk Extr_corpus Extr_httpmodel Extr_ir Extr_runtime Extr_server List String
