(* UI fuzzing baselines (§5.1).  Three policies drive the runtime:

     - [`Auto]: the PUMA analogue — launches the app and fires every plain
       clickable element it can recognize.  Custom UI widgets defeat it,
       side-effect actions are never performed, timers/pushes never fire.
     - [`Manual]: a human session — also drives custom UI (logging in,
       navigating custom widgets) but skips side-effect actions (payments,
       purchases), timers and pushes, and misses obscure deep links.
     - [`Full]: ground-truth execution — every trigger fires, including
       timers, server pushes and side-effect actions.

   The captured trace is the mitmproxy analogue: the full decrypted
   HTTP(S) transaction stream. *)

module Ir = Extr_ir.Types
module Http = Extr_httpmodel.Http
module Apk = Extr_apk.Apk
module Spec = Extr_corpus.Spec
module Runtime = Extr_runtime.Runtime

type policy = [ `Auto | `Manual | `Full ]

let policy_name = function `Auto -> "auto" | `Manual -> "manual" | `Full -> "full"

(** Endpoint id encoded in a trampoline class name ("pkg.Click_e12" →
    "e12").  The fuzzers key UI decisions on the app spec, not on class
    names the analysis sees — this lookup stands in for inspecting the
    actual UI widget. *)
let endpoint_of_listener (app : Spec.app) (cls : string) : Spec.endpoint option =
  let base =
    match String.rindex_opt cls '.' with
    | Some i -> String.sub cls (i + 1) (String.length cls - i - 1)
    | None -> cls
  in
  match String.index_opt base '_' with
  | Some i ->
      let id = String.sub base (i + 1) (String.length base - i - 1) in
      Spec.find_endpoint app id
  | None -> None

(** Should this registration fire under the policy? *)
let fires (app : Spec.app) (policy : policy) (r : Runtime.registration) : bool =
  match r.Runtime.rg_kind with
  | "location" ->
      (* Location callbacks arrive whenever the framework has a fix. *)
      true
  | "timer" | "push" -> policy = `Full
  | "click" -> (
      match endpoint_of_listener app r.Runtime.rg_listener.Extr_runtime.Rvalue.ro_cls with
      | Some e -> Spec.trigger_visible app ~policy e
      | None -> (
          (* Unknown listener: a plain clickable. *)
          match policy with
          | `Auto -> not app.Spec.a_auto_blocked
          | `Manual | `Full -> true))
  | _ -> false

let trigger_label (app : Spec.app) (r : Runtime.registration) : Http.trigger =
  let name = r.Runtime.rg_listener.Extr_runtime.Rvalue.ro_cls in
  match r.Runtime.rg_kind with
  | "timer" -> Http.Timer name
  | "push" -> Http.Server_push name
  | "location" -> Http.App_internal ("location:" ^ name)
  | _ -> (
      match endpoint_of_listener app name with
      | Some e -> (
          match e.Spec.e_trigger with
          | Spec.Tcustom -> Http.Ui_custom e.Spec.e_id
          | Spec.Taction -> Http.Ui_action e.Spec.e_id
          | Spec.Tclick | Spec.Tobscure -> Http.Ui_click e.Spec.e_id
          | Spec.Tentry | Spec.Ttimer | Spec.Tpush | Spec.Tinternal _ ->
              Http.Ui_click e.Spec.e_id)
      | None -> Http.Ui_click name)

(** Run an app under a policy and capture its traffic trace. *)
let run ?(input = fun () -> "2024070612345678") (app : Spec.app) (apk : Apk.t) ~policy :
    Http.trace =
  let net = Extr_server.Server.make app in
  let rt = Runtime.create ~net ~input apk in
  rt.Runtime.trigger <- Http.App_internal "launch";
  ignore (Runtime.launch rt);
  (* Drive registered callbacks; new registrations made during handling
     are picked up on later rounds (bounded). *)
  let fired = ref [] in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 8 do
    incr rounds;
    let pendings =
      List.filter
        (fun r -> not (List.memq r !fired))
        rt.Runtime.registrations
    in
    if pendings = [] then continue_ := false
    else
      List.iter
        (fun r ->
          fired := r :: !fired;
          if fires app policy r then begin
            rt.Runtime.trigger <- trigger_label app r;
            try Runtime.fire rt r
            with Runtime.Runtime_error _ -> ()
          end)
        pendings
  done;
  Runtime.captured_trace rt

(** Which endpoints appeared in a trace, identified by the server's
    [x-endpoint] annotation. *)
let observed_endpoints (trace : Http.trace) : string list =
  List.filter_map
    (fun (te : Http.trace_entry) ->
      match Http.header "x-endpoint" te.Http.te_tx.Http.tx_response.Http.resp_headers with
      | Some "?" | None -> None
      | Some id -> Some id)
    trace.Http.tr_entries
  |> List.sort_uniq String.compare
