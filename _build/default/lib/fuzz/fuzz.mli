(** UI fuzzing baselines (§5.1): three policies drive the runtime and
    capture traffic traces (the mitmproxy analogue).

    - [`Auto] — the PUMA analogue: fires every plain clickable it can
      recognize; custom UI defeats it, side-effect actions never run,
      timers/pushes never fire.
    - [`Manual] — a human session: also drives custom UI (logins,
      navigation) but skips side-effect actions, timers and pushes, and
      misses obscure deep links.
    - [`Full] — ground-truth execution: every trigger fires. *)

module Http = Extr_httpmodel.Http
module Apk = Extr_apk.Apk
module Spec = Extr_corpus.Spec

type policy = [ `Auto | `Manual | `Full ]

val policy_name : policy -> string

val run : ?input:(unit -> string) -> Spec.app -> Apk.t -> policy:policy -> Http.trace
(** Launch the app under a policy and return the captured trace. *)

val observed_endpoints : Http.trace -> string list
(** Endpoints that appeared in a trace, identified by the server's
    [x-endpoint] annotation (sorted, deduplicated). *)
