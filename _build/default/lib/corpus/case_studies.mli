(** Hand-authored corpus apps for the paper's case studies.

    Unlike the synthesized Table-1 apps, these specs replicate the
    structure the paper describes in detail: radio reddit's
    login/save/vote dependency chain (§5.2, Table 3), TED's
    SQLite-mediated prefetching pipeline (Fig. 1, Table 4), Kayak's API
    categories and replayable flight search (§5.3, Tables 5/6), Diode's
    9-branch URI alternation (Fig. 3), and a small shared-demarcation
    app exercising Figure 5's disjoint-slice pairing. *)

val radio_reddit : Spec.app
(** §5.2 / Table 3: login stores modhash + cookie to the heap; save and
    vote POST them with item ids parsed from the front-page listing. *)

val ted_api_key_res : int
(** Resource id holding TED's API key (looked up via [getResources]). *)

val ted : Spec.app
(** Fig. 1 / Table 4: talk list → SQLite `talks` table → per-talk detail,
    thumbnail and media fetches driven by stored columns. *)

val kayak : Spec.app
(** §5.3: session, flight search/poll, hotel search, registration, plus
    the app-specific User-Agent the server's access control checks. *)

val kayak_categories : (string * string * string * int) list
(** Table 5 rows: (category, method, URI prefix, paper's #APIs). *)

val diode : Spec.app
(** Fig. 3: one GET whose path is a 9-way alternation over front page /
    search / subreddit listings, plus 22 further endpoints and enough
    filler that slices stay a small fraction of the app. *)

val shared_dp : Spec.app
(** Figure 5's code-reuse shape: every request flows through one shared
    fetch helper, so all transactions share a single demarcation point
    and must be separated by disjoint sub-slices (call-string
    contexts). *)

val all : Spec.app list
