(* Application specifications: the single source of truth each corpus app
   is generated from.  One spec drives (1) the Limple code generator — the
   bytecode Extractocol analyzes, (2) the simulated origin server, (3) the
   dynamic fuzzers' knowledge of which UI events exist, and (4) the ground
   truth the evaluation compares against.  The endpoint mix per app mirrors
   Table 1 of the paper. *)

module Http = Extr_httpmodel.Http

(** Where a request value comes from. *)
type vsrc =
  | Sconst of string  (** string literal in the code *)
  | Sres of int  (** Android resource (strings.xml) lookup *)
  | Suser  (** user input through an EditText *)
  | Scounter  (** an integer field (paging counters etc.) *)
  | Sgps  (** latitude stored by a location callback — the §3.4 example *)
  | Sresp of string * string list
      (** value stored from endpoint [id]'s response at the given JSON/XML
          path (token, uri, ...) — an inter-transaction dependency *)
  | Sdb of string * string  (** read back from SQLite [table], [column] *)

(** URI path template segments. *)
type seg =
  | Lit of string
  | Var of vsrc
  | Salt of seg list list
      (** alternation: the code takes one of several branches (Diode's
          front-page / search / subreddit URI construction, Figure 3) *)

(** Request bodies. *)
type body =
  | Bnone
  | Bquery of (string * vsrc) list  (** form-encoded (UrlEncodedFormEntity) *)
  | Bjson of (string * vsrc) list  (** org.json builder *)
  | Bgson of (string * vsrc) list  (** reflection-serialized data class *)

type rkind = Kstr | Knum | Kbool

(** What the app does with a parsed response value. *)
type ruse =
  | Udb of string  (** insert into the named SQLite table *)
  | Uheap  (** store into an activity field for later requests *)
  | Ufollow of string  (** immediately fetch the URL (child endpoint id) *)
  | Uui  (** display via TextView *)

(** Response body shape: both what the server sends and which parts the
    app parses ([rf_read]).  Unread fields reproduce the paper's finding
    that signatures cover only inspected keywords. *)
type rfield =
  | Rleaf of { key : string; kind : rkind; read : bool; use : ruse option }
  | Robj of { key : string; fields : rfield list; read : bool }
  | Rarr of { key : string; elem : rfield list; read : bool; loop : bool }
      (** [loop]: the app iterates the array (exercises rep widening) *)

type resp =
  | Rnone
  | Rjson of rfield list
  | Rxml of string * rfield list  (** root tag, children *)
  | Rtext
  | Rmedia  (** opaque binary payload (ads, thumbnails, streams) *)

(** How the request is triggered at runtime — determines which dynamic
    baselines can observe it (§5.1). *)
type trigger =
  | Tentry  (** fired during activity startup *)
  | Tclick  (** plain clickable element: both fuzzers reach it *)
  | Tcustom  (** custom UI widget: manual only (PUMA fails, §5.1) *)
  | Tobscure
      (** clickable only reached by exhaustive automatic exploration —
          the human session skipped it *)
  | Taction  (** side-effect action (purchase/payment): no fuzzer fires it *)
  | Ttimer  (** timer-triggered (APK update checks) *)
  | Tpush  (** server push *)
  | Tinternal of string  (** fired by the parent endpoint's response handler *)

type stack =
  | Apache
  | Urlconn
  | Volley
  | Okhttp
  | Mediaplayer
      (** fetched by feeding the URI to MediaPlayer.setDataSource — only
          meaningful for [Tinternal] media children (opaque responses) *)

type endpoint = {
  e_id : string;
  e_meth : Http.meth;
  e_scheme : string;
  e_host : string;
  e_path : seg list;  (** path template, starting with '/' literal *)
  e_query : (string * vsrc) list;  (** URI query string *)
  e_headers : (string * vsrc) list;
  e_body : body;
  e_resp : resp;
  e_trigger : trigger;
  e_stack : stack;
  e_async : bool;  (** wrap the HTTP call in an AsyncTask (implicit flow) *)
  e_supported : bool;
      (** [false]: emitted through an Android intent service — outside
          Extractocol's scope (§4), so a deliberate static miss *)
}

type app = {
  a_name : string;
  a_package : string;
  a_closed : bool;  (** closed-source app (async heuristic enabled, §5) *)
  a_auto_blocked : bool;
      (** the app's custom UI defeats the automatic fuzzer entirely *)
  a_shared_fetch : bool;
      (** route all Apache requests through one shared helper method, so
          every transaction shares a single demarcation point (the
          code-reuse situation of Figure 5) *)
  a_filler : int;
      (** non-protocol filler methods generated per endpoint (UI plumbing
          and utilities): real apps are mostly not protocol code, which is
          what makes slicing worthwhile (Figure 3: slices are 6.3 % of
          Diode) *)
  a_endpoints : endpoint list;
  a_resources : (int * string) list;
}

let endpoint ?(scheme = "https") ?(query = []) ?(headers = []) ?(body = Bnone)
    ?(resp = Rnone) ?(trigger = Tclick) ?(stack = Apache) ?(async = false)
    ?(supported = true) ~id ~meth ~host path =
  {
    e_id = id;
    e_meth = meth;
    e_scheme = scheme;
    e_host = host;
    e_path = path;
    e_query = query;
    e_headers = headers;
    e_body = body;
    e_resp = resp;
    e_trigger = trigger;
    e_stack = stack;
    e_async = async;
    e_supported = supported;
  }

(* ------------------------------------------------------------------ *)
(* Spec queries (ground truth)                                        *)
(* ------------------------------------------------------------------ *)

let find_endpoint app id = List.find_opt (fun e -> e.e_id = id) app.a_endpoints

(** Endpoints Extractocol should reconstruct statically. *)
let statically_visible app = List.filter (fun e -> e.e_supported) app.a_endpoints

(** Can the endpoint's trigger chain fire under a fuzzing policy?  The
    policies mirror §5.1: automatic fuzzing fires plain clicks (unless the
    app's custom UI blocks it); manual fuzzing also drives custom UI;
    neither performs side-effect actions, waits for timers, or receives
    server pushes.  Internal endpoints inherit their parent's visibility. *)
let rec trigger_visible app ~policy (e : endpoint) =
  match e.e_trigger with
  | Tentry -> true
  | Tclick -> (
      match policy with
      | `Auto -> not app.a_auto_blocked
      | `Manual -> true
      | `Full -> true)
  | Tcustom -> ( match policy with `Auto -> false | `Manual | `Full -> true)
  | Tobscure -> (
      match policy with
      | `Auto -> not app.a_auto_blocked
      | `Manual -> false
      | `Full -> true)
  | Taction -> ( match policy with `Auto | `Manual -> false | `Full -> true)
  | Ttimer | Tpush -> ( match policy with `Auto | `Manual -> false | `Full -> true)
  | Tinternal parent -> (
      match find_endpoint app parent with
      | Some p -> trigger_visible app ~policy p
      | None -> false)

let dynamically_visible app ~policy =
  List.filter (trigger_visible app ~policy) app.a_endpoints

(** Request-side constant keywords of an endpoint: query keys and body
    keys (Figure 7 ground truth). *)
let request_keywords (e : endpoint) =
  let body_keys =
    match e.e_body with
    | Bnone -> []
    | Bquery kvs | Bjson kvs | Bgson kvs -> List.map fst kvs
  in
  List.sort_uniq String.compare (List.map fst e.e_query @ body_keys)

(** Response keys, split into read (inspected by the app) and all
    (present on the wire). *)
let rec rfield_keys ~only_read fields =
  List.concat_map
    (fun f ->
      match f with
      | Rleaf { key; read; _ } -> if (not only_read) || read then [ key ] else []
      | Robj { key; fields; read } ->
          let sub = rfield_keys ~only_read fields in
          if (not only_read) || read then key :: sub
          else if sub <> [] then key :: sub
          else []
      | Rarr { key; elem; read; _ } ->
          let sub = rfield_keys ~only_read elem in
          if (not only_read) || read then key :: sub
          else if sub <> [] then key :: sub
          else [])
    fields

let response_keywords ?(only_read = true) (e : endpoint) =
  match e.e_resp with
  | Rnone | Rtext | Rmedia -> []
  | Rjson fields -> List.sort_uniq String.compare (rfield_keys ~only_read fields)
  | Rxml (_, fields) ->
      (* The root tag is structural, not a parsed keyword. *)
      List.sort_uniq String.compare (rfield_keys ~only_read fields)

(** Does the endpoint's response carry a body the app processes? *)
let has_processed_response (e : endpoint) =
  match e.e_resp with
  | Rnone | Rmedia -> false
  | Rtext -> true
  | Rjson fields | Rxml (_, fields) -> rfield_keys ~only_read:true fields <> []
