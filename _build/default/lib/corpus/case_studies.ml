(* Hand-authored case-study apps reproducing the paper's in-depth
   analyses: radio reddit (Table 3), TED (Table 4 and Figure 1), Kayak
   (Tables 5 and 6, §5.3) and Diode (Figure 3). *)

module Http = Extr_httpmodel.Http
open Spec

(* ------------------------------------------------------------------ *)
(* radio reddit — Table 3                                             *)
(* ------------------------------------------------------------------ *)

(** Six transactions: info, station status (whose relay URI feeds the
    media player), login (modhash/cookie reused by save and vote), save,
    vote, and the relay stream. *)
let radio_reddit : app =
  let host_www = "www.reddit.com" in
  let host_radio = "www.radioreddit.com" in
  let host_ssl = "ssl.reddit.com" in
  let info =
    endpoint ~id:"info" ~meth:Http.GET ~scheme:"http" ~host:host_www
      [ Lit "/api/info.json" ]
      ~query:[ ("id", Suser) ]
      ~trigger:Tentry ~stack:Apache
  in
  let status =
    endpoint ~id:"status" ~meth:Http.GET ~scheme:"http" ~host:host_radio
      [ Lit "/api/"; Var Suser; Lit "/status.json" ]
      ~trigger:Tclick ~stack:Apache
      ~resp:
        (Rjson
           [
             Rleaf { key = "relay"; kind = Kstr; read = true; use = Some (Ufollow "stream") };
             Rleaf { key = "listeners"; kind = Knum; read = true; use = Some Uui };
             Rleaf { key = "all_listeners"; kind = Knum; read = true; use = None };
             Rleaf { key = "online"; kind = Kstr; read = true; use = None };
             Rleaf { key = "playlist"; kind = Kstr; read = true; use = Some Uui };
             Robj
               {
                 key = "songs";
                 read = true;
                 fields =
                   [
                     Rarr
                       {
                         key = "song";
                         read = true;
                         loop = true;
                         elem =
                           [
                             (* The app does not inspect "album" and
                                "score" (§5.2: 16 of 18 keywords). *)
                             Rleaf { key = "album"; kind = Kstr; read = false; use = None };
                             Rleaf { key = "artist"; kind = Kstr; read = true; use = Some Uui };
                             Rleaf { key = "download_url"; kind = Kstr; read = true; use = None };
                             Rleaf { key = "genre"; kind = Kstr; read = true; use = None };
                             Rleaf { key = "id"; kind = Kstr; read = true; use = Some Uheap };
                             Rleaf { key = "preview_url"; kind = Kstr; read = true; use = None };
                             Rleaf { key = "reddit_title"; kind = Kstr; read = true; use = Some Uui };
                             Rleaf { key = "reddit_url"; kind = Kstr; read = true; use = None };
                             Rleaf { key = "redditor"; kind = Kstr; read = true; use = None };
                             Rleaf { key = "score"; kind = Knum; read = false; use = None };
                             Rleaf { key = "title"; kind = Kstr; read = true; use = Some Uui };
                           ];
                       };
                   ];
               };
           ])
  in
  let login =
    endpoint ~id:"login" ~meth:Http.POST ~scheme:"https" ~host:host_ssl
      [ Lit "/api/login" ]
      ~body:
        (Bquery [ ("user", Suser); ("passwd", Suser); ("api_type", Sconst "json") ])
      ~trigger:Tcustom ~stack:Apache
      ~resp:
        (Rjson
           [
             Rleaf { key = "modhash"; kind = Kstr; read = true; use = Some Uheap };
             Rleaf { key = "cookie"; kind = Kstr; read = true; use = Some Uheap };
             Rleaf { key = "need_https"; kind = Kbool; read = true; use = None };
           ])
  in
  let save =
    endpoint ~id:"save" ~meth:Http.POST ~scheme:"http" ~host:host_www
      [ Lit "/api/"; Salt [ [ Lit "unsave" ]; [ Lit "save" ] ] ]
      ~headers:[ ("Cookie", Sresp ("login", [ "cookie" ])) ]
      ~body:
        (Bquery
           [
             ("id", Sresp ("status", [ "songs"; "song"; "[]"; "id" ]));
             ("uh", Sresp ("login", [ "modhash" ]));
           ])
      ~trigger:Tclick ~stack:Apache
      ~resp:
        (* The reddit API answers save/vote with a jquery-style status
           object the app checks for errors — these are the other two
           request/response pairs of the paper's #Pair = 4. *)
        (Rjson [ Rleaf { key = "errors"; kind = Kstr; read = true; use = None } ])
  in
  let vote =
    endpoint ~id:"vote" ~meth:Http.POST ~scheme:"http" ~host:host_www
      [ Lit "/api/vote" ]
      ~headers:[ ("Cookie", Sresp ("login", [ "cookie" ])) ]
      ~body:
        (Bquery
           [
             ("id", Sresp ("status", [ "songs"; "song"; "[]"; "id" ]));
             ("dir", Suser);
             ("uh", Sresp ("login", [ "modhash" ]));
           ])
      ~trigger:Tclick ~stack:Apache
      ~resp:
        (Rjson [ Rleaf { key = "errors"; kind = Kstr; read = true; use = None } ])
  in
  let stream =
    endpoint ~id:"stream" ~meth:Http.GET ~scheme:"http" ~host:"cdn.audiopump.co"
      [ Lit "/radioreddit/hiphop_mp3_128k" ]
      ~trigger:(Tinternal "status") ~stack:Mediaplayer ~resp:Rmedia
  in
  {
    a_name = "radio reddit";
    a_package = "com.radioreddit.android";
    a_closed = false;
    a_auto_blocked = false;
    a_shared_fetch = false;
    a_filler = 2;
    a_endpoints = [ info; status; login; save; vote; stream ];
    a_resources = [];
  }

(* ------------------------------------------------------------------ *)
(* TED — Table 4 and Figure 1                                         *)
(* ------------------------------------------------------------------ *)

let ted_api_key_res = 7801

(** Eight notable transactions: speakers (DB insert), facebook sharing,
    the ad-query chain (talk → ad query → ad video → media player), the
    talk catalog (thumbnail/video URIs into the DB), and the DB-driven
    thumbnail/video fetches. *)
let ted : app =
  let host = "app-api.ted.com" in
  let speakers =
    endpoint ~id:"speakers" ~meth:Http.GET ~scheme:"https" ~host
      [ Lit "/v1/speakers.json" ]
      ~query:
        [
          ("limit", Sconst "2000");
          ("api-key", Sres ted_api_key_res);
          ("filter", Scounter);
        ]
      ~trigger:Tentry ~stack:Apache
      ~resp:
        (Rjson
           [
             Rarr
               {
                 key = "speakers";
                 read = true;
                 loop = true;
                 elem =
                   [
                     Rleaf { key = "name"; kind = Kstr; read = true; use = Some (Udb "speakers") };
                     Rleaf { key = "description"; kind = Kstr; read = true; use = Some (Udb "speakers") };
                     Rleaf { key = "whotheyare"; kind = Kstr; read = false; use = None };
                   ];
               };
           ])
  in
  let facebook =
    endpoint ~id:"facebook" ~meth:Http.GET ~scheme:"https"
      ~host:"graph.facebook.com"
      [ Lit "/me/photos" ]
      ~trigger:Tclick ~stack:Okhttp ~resp:Rtext
  in
  let ad_query =
    endpoint ~id:"ad_query" ~meth:Http.GET ~scheme:"https" ~host
      [ Lit "/v1/talks/"; Var Scounter; Lit "/android_ad.json" ]
      ~query:[ ("api-key", Sres ted_api_key_res) ]
      ~trigger:Tclick ~stack:Apache
      ~resp:
        (Rjson
           [
             Robj
               {
                 key = "companions";
                 read = true;
                 fields =
                   [
                     Robj
                       {
                         key = "on_page";
                         read = true;
                         fields =
                           [
                             Rleaf { key = "height"; kind = Knum; read = true; use = None };
                             Rleaf { key = "width"; kind = Knum; read = true; use = None };
                           ];
                       };
                     Robj
                       {
                         key = "preroll";
                         read = true;
                         fields =
                           [
                             Rleaf { key = "height"; kind = Knum; read = true; use = None };
                             Rleaf { key = "width"; kind = Knum; read = true; use = None };
                           ];
                       };
                   ];
               };
             Rleaf { key = "url"; kind = Kstr; read = true; use = Some (Ufollow "ad_resource") };
           ])
  in
  let ad_resource =
    endpoint ~id:"ad_resource" ~meth:Http.GET ~scheme:"https" ~host:"ads.example.net"
      [ Lit "/vast/preroll" ]
      ~trigger:(Tinternal "ad_query") ~stack:Apache
      ~resp:
        (Rxml
           ( "vast",
             [
               Robj
                 {
                   key = "creative";
                   read = true;
                   fields =
                     [
                       Rleaf { key = "mediafile"; kind = Kstr; read = true; use = Some (Ufollow "ad_video") };
                       Rleaf { key = "@duration"; kind = Kstr; read = true; use = None };
                     ];
                 };
             ] ))
  in
  let ad_video =
    endpoint ~id:"ad_video" ~meth:Http.GET ~scheme:"https" ~host:"cdn.ads.example.net"
      [ Lit "/media/preroll.mp4" ]
      ~trigger:(Tinternal "ad_resource") ~stack:Mediaplayer ~resp:Rmedia
  in
  let catalog =
    endpoint ~id:"catalog" ~meth:Http.GET ~scheme:"https" ~host
      [ Lit "/v1/talk_catalogs/android_v1.json" ]
      ~query:
        [
          ("api-key", Sres ted_api_key_res);
          ("fields", Sconst "duration_in_seconds");
          ("filter", Scounter);
        ]
      ~trigger:Tentry ~stack:Apache
      ~resp:
        (Rjson
           [
             Rarr
               {
                 key = "talks";
                 read = true;
                 loop = true;
                 elem =
                   [
                     Rleaf { key = "thumb_uri"; kind = Kstr; read = true; use = Some (Udb "talks") };
                     Rleaf { key = "video_uri"; kind = Kstr; read = true; use = Some (Udb "talks") };
                     Rleaf { key = "duration_in_seconds"; kind = Knum; read = true; use = None };
                   ];
               };
           ])
  in
  let thumbnail =
    endpoint ~id:"thumbnail" ~meth:Http.GET ~scheme:"https" ~host:"img.ted.com"
      [ Var (Sdb ("talks", "thumb_uri")) ]
      ~trigger:Tclick ~stack:Urlconn ~resp:Rmedia
  in
  let video =
    endpoint ~id:"video" ~meth:Http.GET ~scheme:"https" ~host:"media.ted.com"
      [ Var (Sdb ("talks", "video_uri")) ]
      ~trigger:Tclick ~stack:Mediaplayer ~resp:Rmedia
  in
  {
    a_name = "TED (case study)";
    a_package = "com.ted.android.case_study";
    a_closed = true;
    a_auto_blocked = false;
    a_shared_fetch = false;
    a_filler = 2;
    a_endpoints =
      [ speakers; facebook; ad_query; ad_resource; ad_video; catalog; thumbnail; video ];
    a_resources = [ (ted_api_key_res, "ted-api-key-77aa21") ];
  }

(* ------------------------------------------------------------------ *)
(* Kayak — Tables 5 and 6, §5.3                                        *)
(* ------------------------------------------------------------------ *)

(** The private REST API: eight URI-prefix categories; the authajax /
    flight-start / flight-poll signatures of Table 6; the app-specific
    User-Agent header used for access control. *)
let kayak : app =
  let host = "www.kayak.com" in
  let ua = ("User-Agent", Sconst "kayakandroidphone/8.1") in
  let auth =
    endpoint ~id:"authajax" ~meth:Http.POST ~scheme:"https" ~host
      [ Lit "/k/authajax" ]
      ~headers:[ ua ]
      ~body:
        (Bquery
           [
             ("action", Sconst "registerandroid");
             ("uuid", Suser);
             ("hash", Suser);
             ("model", Suser);
             ("platform", Sconst "android");
             ("os", Suser);
             ("locale", Suser);
             ("tz", Suser);
           ])
      ~trigger:Tentry ~stack:Apache
      ~resp:
        (Rjson
           [ Rleaf { key = "sid"; kind = Kstr; read = true; use = Some Uheap } ])
  in
  let flight_start =
    endpoint ~id:"flight_start" ~meth:Http.GET ~scheme:"https" ~host
      [ Lit "/api/search/V8/flight/start" ]
      ~headers:[ ua ]
      ~query:
        [
          ("cabin", Suser);
          ("travelers", Scounter);
          ("origin", Suser);
          ("nearbyO", Sconst "false");
          ("destination", Suser);
          ("nearbyD", Sconst "false");
          ("depart_date", Suser);
          ("depart_time", Suser);
          ("depart_date_flex", Sconst "exact");
          ("_sid_", Sresp ("authajax", [ "sid" ]));
        ]
      ~trigger:Tclick ~stack:Apache
      ~resp:
        (Rjson
           [
             Rleaf { key = "searchid"; kind = Kstr; read = true; use = Some Uheap };
           ])
  in
  let flight_poll =
    endpoint ~id:"flight_poll" ~meth:Http.GET ~scheme:"https" ~host
      [ Lit "/api/search/V8/flight/poll" ]
      ~headers:[ ua ]
      ~query:
        [
          ("searchid", Sresp ("flight_start", [ "searchid" ]));
          ("nc", Scounter);
          ("c", Scounter);
          ("s", Suser);
          ("d", Sconst "up");
          ("currency", Suser);
          ("includeopaques", Sconst "true");
          ("includeSplit", Sconst "false");
        ]
      ~trigger:Tclick ~stack:Apache
      ~resp:
        (Rjson
           [
             Rarr
               {
                 key = "fares";
                 read = true;
                 loop = false;
                 elem =
                   [
                     Rleaf { key = "price"; kind = Knum; read = true; use = Some Uui };
                     Rleaf { key = "airline"; kind = Kstr; read = true; use = None };
                   ];
               };
           ])
  in
  (* Category fillers reproduce Table 5's API counts per URI prefix. *)
  let filler ~prefix ~category ~meth ~count ~trigger ~resp_json =
    List.init count (fun i ->
        endpoint
          ~id:(Printf.sprintf "%s%d" category i)
          ~meth ~scheme:"https" ~host
          [ Lit (Printf.sprintf "%s/%s%d" prefix category i) ]
          ~headers:[ ua ] ~trigger ~stack:Apache
          ~resp:
            (if resp_json && i = 0 then
               Rjson
                 [ Rleaf { key = "result"; kind = Kstr; read = true; use = None } ]
             else Rnone))
  in
  let endpoints =
    [ auth; flight_start; flight_poll ]
    @ filler ~prefix:"/trips/v2" ~category:"trip" ~meth:Http.GET ~count:11
        ~trigger:Tclick ~resp_json:false
    @ filler ~prefix:"/k/authajax" ~category:"authx" ~meth:Http.POST ~count:3
        ~trigger:Tcustom ~resp_json:false
    @ filler ~prefix:"/k/run/fbauth" ~category:"fbauth" ~meth:Http.POST ~count:2
        ~trigger:Tcustom ~resp_json:false
    @ filler ~prefix:"/api/search/V8/flight" ~category:"flight" ~meth:Http.GET
        ~count:4 ~trigger:Tclick ~resp_json:true
    @ filler ~prefix:"/api/search/V8/hotel" ~category:"hotel" ~meth:Http.GET
        ~count:2 ~trigger:Tclick ~resp_json:true
    @ filler ~prefix:"/api/search/V8/car" ~category:"car" ~meth:Http.GET ~count:1
        ~trigger:Tclick ~resp_json:true
    @ filler ~prefix:"/h/mobileapis" ~category:"mobile" ~meth:Http.GET ~count:12
        ~trigger:Tentry ~resp_json:true
    @ filler ~prefix:"/s/mobileads" ~category:"ads" ~meth:Http.GET ~count:1
        ~trigger:Ttimer ~resp_json:true
    @ filler ~prefix:"/k" ~category:"etc" ~meth:Http.POST ~count:4
        ~trigger:Taction ~resp_json:false
  in
  {
    a_name = "Kayak (case study)";
    a_package = "com.kayak";
    a_closed = true;
    a_auto_blocked = false;
    a_shared_fetch = false;
    a_filler = 2;
    a_endpoints = endpoints;
    a_resources = [];
  }

(** Table 5's category definitions: (category, method, URI prefix,
    expected API count) used by the bench to group transactions. *)
let kayak_categories =
  [
    ("Travel Planner", "GET", "/trips/v2", 11);
    ("Authentication", "POST", "/k/authajax", 4);
    ("Facebook Auth", "POST", "/k/run/fbauth", 2);
    ("Flight", "GET", "/api/search/V8/flight", 6);
    ("Hotel", "GET", "/api/search/V8/hotel", 2);
    ("Car", "GET", "/api/search/V8/car", 1);
    ("Mobile Specific", "GET", "/h/mobileapis", 12);
    ("Advertising", "GET", "/s/mobileads", 1);
    ("Etc.", "POST", "/k", 4);
  ]

(* ------------------------------------------------------------------ *)
(* Diode — Figure 3                                                   *)
(* ------------------------------------------------------------------ *)

(** The reddit client whose listing request combines nine URI patterns
    (three listing modes × three paging suffixes) behind one demarcation
    point; slicing covers ≈6 % of the code. *)
let diode : app =
  let host = "www.reddit.com" in
  let listing =
    endpoint ~id:"listing" ~meth:Http.GET ~scheme:"http" ~host
      [
        Salt
          [
            [ Lit "/"; Var Suser; Lit ".json?"; Var Suser; Lit "&" ];
            [ Lit "/search/.json?q="; Var Suser; Lit "&sort="; Var Suser ];
            [ Lit "/r/"; Var Suser; Lit "/"; Var Suser; Lit ".json?&" ];
          ];
        Salt
          [
            [ Lit "count="; Var Scounter; Lit "&after="; Var Suser; Lit "&" ];
            [ Lit "count="; Var Scounter; Lit "&before="; Var Suser; Lit "&" ];
            [];
          ];
      ]
      ~trigger:Tentry ~stack:Apache
      ~resp:
        (Rjson
           [
             Robj
               {
                 key = "data";
                 read = true;
                 fields =
                   [
                     Rarr
                       {
                         key = "children";
                         read = true;
                         loop = true;
                         elem =
                           [
                             Rleaf { key = "title"; kind = Kstr; read = true; use = Some Uui };
                             Rleaf { key = "permalink"; kind = Kstr; read = true; use = None };
                             Rleaf { key = "ups"; kind = Knum; read = false; use = None };
                           ];
                       };
                   ];
               };
           ])
  in
  (* The remaining Diode requests (Table 1: 24 GETs, 2 JSON shapes,
     5 pairs). *)
  let others =
    List.init 23 (fun i ->
        let id = Printf.sprintf "g%d" i in
        endpoint ~id ~meth:Http.GET ~scheme:(if i mod 2 = 0 then "http" else "https")
          ~host
          [ Lit (Printf.sprintf "/api/diode/%s%d.json" (if i mod 2 = 0 then "comments" else "user") i) ]
          ~query:(if i mod 3 = 0 then [ ("limit", Scounter) ] else [])
          ~trigger:Tclick ~stack:(if i mod 2 = 0 then Apache else Urlconn)
          ~resp:
            (if i < 4 then
               Rjson
                 [
                   Rleaf { key = "kind"; kind = Kstr; read = true; use = None };
                   Rleaf { key = (if i mod 2 = 0 then "body" else "author"); kind = Kstr; read = true; use = Some Uui };
                 ]
             else Rnone))
  in
  {
    a_name = "Diode";
    a_package = "in.shick.diode";
    a_closed = false;
    a_auto_blocked = false;
    a_shared_fetch = false;
    a_filler = 14;
    a_endpoints = listing :: others;
    a_resources = [];
  }

(** The Figure-5 shared-demarcation-point app: two requests and two
    response handlers sharing a common helper that contains the only
    demarcation point; disjoint-segment pairing must keep A and B apart. *)
let shared_dp : app =
  let host = "api.shared.example" in
  let mk id path resp_key trigger =
    endpoint ~id ~meth:Http.GET ~scheme:"http" ~host
      [ Lit path ]
      ~trigger ~stack:Apache
      ~resp:
        (Rjson [ Rleaf { key = resp_key; kind = Kstr; read = true; use = Some Uui } ])
  in
  {
    a_name = "SharedDP";
    a_package = "com.example.shareddp";
    a_closed = false;
    a_auto_blocked = false;
    a_shared_fetch = true;
    a_filler = 2;
    a_endpoints =
      [ mk "reqA" "/alpha/list" "alpha_items" Tclick;
        mk "reqB" "/beta/list" "beta_items" Tclick ];
    a_resources = [];
  }

let all = [ radio_reddit; ted; kayak; diode; shared_dp ]
