lib/corpus/corpus.ml: Case_studies Codegen Extr_apk Lazy List Spec Synth
