lib/corpus/case_studies.ml: Extr_httpmodel List Printf Spec
