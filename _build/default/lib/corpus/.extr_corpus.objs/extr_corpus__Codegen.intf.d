lib/corpus/codegen.mli: Extr_apk Extr_ir Spec
