lib/corpus/spec.mli: Extr_httpmodel
