lib/corpus/synth.mli: Spec
