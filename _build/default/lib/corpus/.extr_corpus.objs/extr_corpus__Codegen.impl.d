lib/corpus/codegen.ml: Extr_apk Extr_httpmodel Extr_ir Extr_semantics Hashtbl List Option Printf Spec String
