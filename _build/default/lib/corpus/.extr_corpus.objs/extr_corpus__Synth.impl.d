lib/corpus/synth.ml: Extr_httpmodel Hashtbl List Printf Spec
