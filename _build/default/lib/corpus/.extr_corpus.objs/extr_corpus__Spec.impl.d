lib/corpus/spec.ml: Extr_httpmodel List String
