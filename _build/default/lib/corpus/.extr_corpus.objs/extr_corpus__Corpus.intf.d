lib/corpus/corpus.mli: Extr_apk Lazy Spec Synth
