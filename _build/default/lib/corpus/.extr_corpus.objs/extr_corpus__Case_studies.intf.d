lib/corpus/case_studies.mli: Spec
