(** Consumption sinks: where network-originated data ends up (§2 — media
    player, SQLite, UI, files). *)

module Ir = Extr_ir.Types

type sink =
  | Media_player
  | Database of string  (** table, when statically known *)
  | Ui_text
  | File_output

val sink_to_string : sink -> string

val find : Ir.invoke -> (sink * int list) option
(** The sink an invoke feeds, with the indices of the arguments that must
    be response-derived for the consumption to count. *)
