(** Taint transfer models for library calls: how taint flows through APIs
    whose code the analysis never sees — builder/container accumulation,
    SQLite pseudo-stores (the TED case study's database-mediated
    dependencies), sanitizers, and privacy sources. *)

module Ir = Extr_ir.Types

(** Effect of a library call on taint state given which inputs are tainted. *)
type effect = {
  taint_ret : bool;
  taint_base : bool;  (** receiver accumulates taint (builders, containers) *)
  db_write : string option;  (** write tainted data into the named store *)
  db_read : string option;  (** return taint when the named store is tainted *)
}

val no_effect : effect

val transfer : Ir.invoke -> base_tainted:bool -> args_tainted:bool list -> effect
(** The taint effect of a library call; the default is the paper's
    open-ended propagation (inputs flow to output and receiver), with
    overrides for sanitizers (logging, predicates, resource lookups) and
    the SQLite store. *)

val source_tag : Ir.invoke -> string option
(** Privacy/QoE origination sources (§2): a tag such as ["gps"] when the
    call's result comes from such a source. *)
