(* Consumption sinks: where network-originated data ends up (§2: "it is
   able to track how the network originated data is consumed within the
   Android app (e.g., network data is fed into a video player)").  A library
   call is a consumer when a tainted (response-derived) value reaches one of
   these APIs. *)

module Ir = Extr_ir.Types

type sink =
  | Media_player
  | Database of string  (** table, when statically known *)
  | Ui_text
  | File_output

let sink_to_string = function
  | Media_player -> "media-player"
  | Database t -> "database:" ^ t
  | Ui_text -> "ui-text"
  | File_output -> "file"

(** Which arguments of the invoke flow into which sink.  Returns the sink
    and the indices of the arguments that must be tainted for the
    consumption to be response-derived ([None] index set means the receiver). *)
let find (i : Ir.invoke) : (sink * int list) option =
  let is = Api.invoke_is i in
  let const_str idx =
    match List.nth_opt i.Ir.iargs idx with
    | Some (Ir.Const (Ir.Cstr s)) -> s
    | Some _ | None -> "*"
  in
  if is ~cls:Api.media_player ~name:"setDataSource" then Some (Media_player, [ 0 ])
  else if is ~cls:Api.sqlite_database ~name:"insert" || is ~cls:Api.sqlite_database ~name:"update"
  then Some (Database (const_str 0), [ 1 ])
  else if is ~cls:Api.text_view ~name:"setText" then Some (Ui_text, [ 0 ])
  else if is ~cls:Api.output_stream ~name:"write" then Some (File_output, [ 0 ])
  else None
