lib/semantics/callbacks.ml: Api Array Extr_cfg Extr_ir List
