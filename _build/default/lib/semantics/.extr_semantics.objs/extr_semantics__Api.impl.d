lib/semantics/api.ml: Extr_ir List
