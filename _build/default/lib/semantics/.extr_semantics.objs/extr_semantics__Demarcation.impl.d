lib/semantics/demarcation.ml: Api Extr_ir List
