lib/semantics/api.mli: Extr_ir
