lib/semantics/callbacks.mli: Extr_cfg Extr_ir
