lib/semantics/demarcation.mli: Extr_ir
