lib/semantics/taint_model.mli: Extr_ir
