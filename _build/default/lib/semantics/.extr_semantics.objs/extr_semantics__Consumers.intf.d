lib/semantics/consumers.mli: Extr_ir
