lib/semantics/consumers.ml: Api Extr_ir List
