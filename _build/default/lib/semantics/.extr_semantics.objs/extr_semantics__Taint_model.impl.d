lib/semantics/taint_model.ml: Api Extr_ir Fun List
