(* Taint transfer models for library calls.  When taint propagation meets a
   library invoke it cannot look inside the callee, so the semantic model
   states how taint flows through the API: whether the return value or the
   receiver becomes tainted given tainted inputs, whether the call writes a
   tainted value into a global store (the SQLite database rows — the paper's
   TED case study tracks dependencies through
   android.database.sqlite.SQLiteDatabase), and whether the data originates
   from a privacy-relevant source (GPS, microphone). *)

module Ir = Extr_ir.Types

(** Effect of a library call on taint state given which inputs are tainted. *)
type effect = {
  taint_ret : bool;
  taint_base : bool;  (** receiver accumulates taint (builders, containers) *)
  db_write : string option;
      (** write tainted data into the named pseudo-store ("db:<table>") *)
  db_read : string option;  (** return taint when the named store is tainted *)
}

let no_effect = { taint_ret = false; taint_base = false; db_write = None; db_read = None }

(** Constant string value of an invoke argument, when statically known. *)
let const_str_arg (i : Ir.invoke) idx =
  match List.nth_opt i.Ir.iargs idx with
  | Some (Ir.Const (Ir.Cstr s)) -> Some s
  | Some _ | None -> None

(** [transfer invoke ~base_tainted ~args_tainted] — the taint effect of a
    library call.  [args_tainted] is per-argument. *)
let transfer (i : Ir.invoke) ~base_tainted ~args_tainted : effect =
  let any_arg = List.exists Fun.id args_tainted in
  let any_input = base_tainted || any_arg in
  let is = Api.invoke_is i in
  (* Sanitizers / non-flows: logging and pure predicates do not carry
     protocol payloads onward. *)
  if is ~cls:Api.android_log ~name:"d" || is ~cls:Api.android_log ~name:"e" then
    no_effect
  else if is ~cls:Api.java_string ~name:"equals" then no_effect
  else if is ~cls:Api.resources ~name:"getString" then
    (* Resource strings are constants from the APK, never tainted. *)
    no_effect
  else if is ~cls:Api.sqlite_database ~name:"insert" || is ~cls:Api.sqlite_database ~name:"update"
  then
    (* insert(table, values): tainted values taint the table store. *)
    { no_effect with db_write = (if any_arg then const_str_arg i 0 else None) }
  else if is ~cls:Api.sqlite_database ~name:"query" then
    (* query(table) returns a cursor reading the table store. *)
    { no_effect with db_read = const_str_arg i 0; taint_base = false }
  else
    (* Default model: data flows from inputs to output and accumulates in
       the receiver for builder/container-style APIs.  This is the paper's
       open-ended propagation — all statements touching tainted objects
       join the slice. *)
    {
      no_effect with
      taint_ret = any_input;
      taint_base = any_arg && i.Ir.ibase <> None;
    }

(** Privacy/QoE-relevant origination sources (§2: "if the app streams data
    from the microphone or camera, we might infer that the traffic is of
    high priority").  Returns a tag when the call's result originates from
    such a source. *)
let source_tag (i : Ir.invoke) : string option =
  let is = Api.invoke_is i in
  if is ~cls:Api.location ~name:"getLat" || is ~cls:Api.location ~name:"getLon" then
    Some "gps"
  else if is ~cls:Api.location_manager ~name:"getLastKnownLocation" then Some "gps"
  else None
