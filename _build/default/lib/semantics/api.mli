(** Names of the modelled library API surface.

    These constants are the single point of truth for every class the
    semantic models, demarcation registry, taint models, deobfuscation
    catalog, code generator and runtime agree on.  Bodies of library
    classes are empty: library behaviour comes from semantic models,
    never from analyzing library code (the paper's §4 approach of
    modelling framework semantics instead of framework code). *)

module Ir = Extr_ir.Types

(** {1 java.lang / java.util} *)

val string_builder : string
val java_string : string
val java_integer : string
val java_object : string
val array_list : string
val hash_map : string
val timer : string
val timer_task : string

(** {1 java.net / java.io} *)

val url_encoder : string
val java_url : string
val http_url_connection : string
val java_socket : string
val input_stream : string
val output_stream : string
val io_utils : string

(** {1 Apache HttpClient} *)

val http_get : string
val http_post : string
val http_put : string
val http_delete : string
val http_request_base : string
val http_client : string
val default_http_client : string
val http_response : string
val http_entity : string
val entity_utils : string
val string_entity : string
val form_entity : string
val name_value_pair : string

(** {1 JSON / XML} *)

val json_object : string
val json_array : string
val gson : string
val xml_parser : string
val xml_element : string

(** {1 Android framework} *)

val activity : string
val resources : string
val view : string
val on_click_listener : string
val async_task : string
val sqlite_database : string
val content_values : string
val cursor : string
val media_player : string
val text_view : string
val edit_text : string
val location_manager : string
val location : string
val location_listener : string
val android_log : string
val intent : string
val context : string
val intent_service : string
val firebase_messaging : string
val messaging_service : string

(** {1 Reflection} *)

val java_class : string
val reflect_method : string

(** {1 Volley} *)

val request_queue : string
val string_request : string
val volley_listener : string

(** {1 OkHttp} *)

val okhttp_client : string
val okhttp_request : string
val okhttp_builder : string
val okhttp_body : string
val okhttp_call : string
val okhttp_response : string
val okhttp_response_body : string

(** {1 The class pool} *)

val library_classes : Ir.cls list
(** All modelled library classes, with superclass links where app classes
    subclass framework classes.  Append these to a program's class list
    so CHA and type lookups resolve. *)

val library_class_names : string list

val is_library_class : string -> bool
(** Is [name] one of the modelled library classes (by exact name)? *)

val library_super : string -> string option
(** Superclass of a library class inside the static library hierarchy. *)

val library_subclass : sub:string -> super:string -> bool
(** Does library class [sub] equal or extend library class [super]? *)

val invoke_is : Ir.invoke -> cls:string -> name:string -> bool
(** Matches an invoke against class + method name.  The class matches
    when either the method reference's class or the receiver's static
    class is [cls] or a library subclass of [cls] (e.g.
    [DefaultHttpClient.execute] matches [HttpClient.execute]). *)
