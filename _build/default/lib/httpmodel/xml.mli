(** A minimal XML document model (elements, attributes, text) with a
    parser for the subset emitted by the corpus servers. *)

type node =
  | Elem of elem
  | Text of string

and elem = { tag : string; attrs : (string * string) list; children : node list }

exception Parse_error of string

val element : ?attrs:(string * string) list -> string -> node list -> elem
val text : string -> node

(** {1 Printing} *)

val escape : string -> string
(** Entity-escape text content. *)

val to_string : elem -> string

(** {1 Parsing} *)

val of_string : string -> elem
(** Parses one element, skipping an optional [<?xml ...?>] declaration.
    @raise Parse_error on malformed input. *)

val of_string_opt : string -> elem option

(** {1 Keywords} *)

val all_keywords : elem -> string list
(** Tags and attribute names anywhere in the element, with duplicates. *)

val distinct_keywords : elem -> string list
(** Sorted, deduplicated tags and attribute names (Figure 7). *)
