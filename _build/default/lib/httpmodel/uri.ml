(* URIs as understood by Extractocol's signature extractor: scheme, host,
   path and an ordered query string of key/value pairs. *)

type t = {
  scheme : string;  (** ["http"] or ["https"] *)
  host : string;
  path : string;  (** always starts with ['/'] (or is empty) *)
  query : (string * string) list;
  raw : string option;
      (** the exact string the client sent, when parsed from one — kept so
          signature matching sees the wire bytes (e.g. trailing "?&") *)
}

let make ?(scheme = "http") ?(query = []) ~host ~path () =
  { scheme; host; path; query; raw = None }

let percent_encode s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '~' | '/' | ':' ->
          Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '%' && !i + 2 < n then begin
       match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
       | Some code ->
           Buffer.add_char buf (Char.chr code);
           i := !i + 3
       | None ->
           Buffer.add_char buf s.[!i];
           incr i
     end
     else if s.[!i] = '+' then begin
       Buffer.add_char buf ' ';
       incr i
     end
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

let query_to_string query =
  String.concat "&"
    (List.map
       (fun (k, v) ->
         if v = "" then k else Printf.sprintf "%s=%s" k (percent_encode v))
       query)

let query_of_string qs =
  if qs = "" then []
  else
    String.split_on_char '&' qs
    |> List.filter (fun s -> s <> "")
    |> List.map (fun kv ->
           match String.index_opt kv '=' with
           | None -> (kv, "")
           | Some i ->
               ( String.sub kv 0 i,
                 percent_decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))

let to_string u =
  match u.raw with
  | Some raw -> raw
  | None ->
      let q = match u.query with [] -> "" | _ -> "?" ^ query_to_string u.query in
      Printf.sprintf "%s://%s%s%s" u.scheme u.host u.path q

exception Parse_error of string

let of_string s =
  let scheme, rest =
    match String.index_opt s ':' with
    | Some i
      when i + 2 < String.length s && s.[i + 1] = '/' && s.[i + 2] = '/' ->
        (String.sub s 0 i, String.sub s (i + 3) (String.length s - i - 3))
    | Some _ | None -> raise (Parse_error ("missing scheme in " ^ s))
  in
  let hostpath, query =
    match String.index_opt rest '?' with
    | None -> (rest, [])
    | Some i ->
        ( String.sub rest 0 i,
          query_of_string (String.sub rest (i + 1) (String.length rest - i - 1)) )
  in
  let host, path =
    match String.index_opt hostpath '/' with
    | None -> (hostpath, "")
    | Some i ->
        (String.sub hostpath 0 i, String.sub hostpath i (String.length hostpath - i))
  in
  { scheme; host; path; query; raw = Some s }

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

let pp fmt u = Fmt.string fmt (to_string u)

(** Path split on ['/'] with empty segments removed; used by URI-prefix
    grouping in the Kayak analysis (Table 5). *)
let path_segments u =
  String.split_on_char '/' u.path |> List.filter (fun s -> s <> "")
