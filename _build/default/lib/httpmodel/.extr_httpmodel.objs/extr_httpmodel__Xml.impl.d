lib/httpmodel/xml.ml: Buffer List Printf String
