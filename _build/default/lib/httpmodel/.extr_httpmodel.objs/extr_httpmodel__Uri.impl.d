lib/httpmodel/uri.ml: Buffer Char Fmt List Printf String
