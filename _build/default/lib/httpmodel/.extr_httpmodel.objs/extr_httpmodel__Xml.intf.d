lib/httpmodel/xml.mli:
