lib/httpmodel/http.mli: Format Json Uri Xml
