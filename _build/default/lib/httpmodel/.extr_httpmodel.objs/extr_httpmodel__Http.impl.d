lib/httpmodel/http.ml: Fmt Json List String Uri Xml
