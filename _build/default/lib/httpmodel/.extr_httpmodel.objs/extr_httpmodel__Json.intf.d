lib/httpmodel/json.mli: Format
