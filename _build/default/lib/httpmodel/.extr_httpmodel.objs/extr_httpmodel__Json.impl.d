lib/httpmodel/json.ml: Buffer Char Fmt List Printf String
