lib/httpmodel/har.mli: Http Json
