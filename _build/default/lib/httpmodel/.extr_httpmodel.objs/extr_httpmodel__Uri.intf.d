lib/httpmodel/uri.mli: Format
