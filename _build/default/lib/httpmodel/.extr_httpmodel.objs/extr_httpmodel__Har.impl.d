lib/httpmodel/har.ml: Fun Http Json List Option Uri Xml
