(** HAR-style serialization of traffic traces.

    The paper's dynamic baselines persist captured traffic (mitmproxy
    dumps) and re-load it for signature-validity checking; this module is
    that archive format: a JSON encoding of {!Http.trace} that
    round-trips exactly (checked by property tests). *)

val json_of_body : Http.body -> Json.t
val body_of_json : Json.t -> Http.body option

val json_of_trigger : Http.trigger -> Json.t
val trigger_of_json : Json.t -> Http.trigger option

val json_of_entry : Http.trace_entry -> Json.t
val entry_of_json : Json.t -> Http.trace_entry option

val to_json : Http.trace -> Json.t

val of_json : Json.t -> Http.trace option
(** [None] when any entry is malformed (no partial loads: a truncated
    dump should fail loudly, not lose transactions silently). *)

val to_string : Http.trace -> string
val of_string : string -> Http.trace option
