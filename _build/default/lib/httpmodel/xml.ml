(* A minimal XML document model (elements, attributes, text) with a parser
   for the subset emitted by the corpus servers.  XML response bodies and
   their DTD-style signatures are built on this. *)

type node =
  | Elem of elem
  | Text of string

and elem = { tag : string; attrs : (string * string) list; children : node list }

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let element ?(attrs = []) tag children = { tag; attrs; children }
let text s = Text s

(* ------------------------------------------------------------------ *)
(* Printer                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec node_to_buffer buf = function
  | Text s -> Buffer.add_string buf (escape s)
  | Elem e -> elem_to_buffer buf e

and elem_to_buffer buf e =
  Buffer.add_char buf '<';
  Buffer.add_string buf e.tag;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape v);
      Buffer.add_char buf '"')
    e.attrs;
  match e.children with
  | [] -> Buffer.add_string buf "/>"
  | children ->
      Buffer.add_char buf '>';
      List.iter (node_to_buffer buf) children;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.tag;
      Buffer.add_char buf '>'

let to_string e =
  let buf = Buffer.create 256 in
  elem_to_buffer buf e;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ()

let is_name_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = ':' || ch = '.'

let parse_name c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ch when is_name_char ch ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ();
  if c.pos = start then fail "expected name at %d" c.pos;
  String.sub c.src start (c.pos - start)

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      let rest = String.sub s !i (min 6 (n - !i)) in
      let consume ent ch =
        let le = String.length ent in
        if String.length rest >= le && String.sub rest 0 le = ent then begin
          Buffer.add_char buf ch;
          i := !i + le;
          true
        end
        else false
      in
      if
        not
          (consume "&lt;" '<' || consume "&gt;" '>' || consume "&amp;" '&'
         || consume "&quot;" '"')
      then begin
        Buffer.add_char buf '&';
        incr i
      end
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected %C at %d, got %C" ch c.pos x
  | None -> fail "expected %C, got eof" ch

let parse_attr c =
  let name = parse_name c in
  skip_ws c;
  expect c '=';
  skip_ws c;
  expect c '"';
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some '"' -> ()
    | Some _ ->
        advance c;
        go ()
    | None -> fail "unterminated attribute"
  in
  go ();
  let v = String.sub c.src start (c.pos - start) in
  advance c;
  (name, unescape v)

let rec parse_elem c =
  expect c '<';
  let tag = parse_name c in
  let rec attrs acc =
    skip_ws c;
    match peek c with
    | Some '/' ->
        advance c;
        expect c '>';
        { tag; attrs = List.rev acc; children = [] }
    | Some '>' ->
        advance c;
        let children = parse_children c tag in
        { tag; attrs = List.rev acc; children }
    | Some _ -> attrs (parse_attr c :: acc)
    | None -> fail "unterminated tag %s" tag
  in
  attrs []

and parse_children c tag =
  let children = ref [] in
  let rec go () =
    match peek c with
    | None -> fail "missing close tag for %s" tag
    | Some '<' ->
        if c.pos + 1 < String.length c.src && c.src.[c.pos + 1] = '/' then begin
          c.pos <- c.pos + 2;
          let close = parse_name c in
          if close <> tag then fail "mismatched close tag %s for %s" close tag;
          skip_ws c;
          expect c '>'
        end
        else begin
          children := Elem (parse_elem c) :: !children;
          go ()
        end
    | Some _ ->
        let start = c.pos in
        let rec scan () =
          match peek c with
          | Some '<' | None -> ()
          | Some _ ->
              advance c;
              scan ()
        in
        scan ();
        let txt = unescape (String.sub c.src start (c.pos - start)) in
        if String.trim txt <> "" then children := Text txt :: !children;
        go ()
  in
  go ();
  List.rev !children

let of_string s =
  let c = { src = s; pos = 0 } in
  skip_ws c;
  (* Skip an optional XML declaration. *)
  if
    c.pos + 1 < String.length s
    && s.[c.pos] = '<'
    && s.[c.pos + 1] = '?'
  then begin
    let rec skip () =
      match peek c with
      | Some '>' -> advance c
      | Some _ ->
          advance c;
          skip ()
      | None -> fail "unterminated declaration"
    in
    skip ();
    skip_ws c
  end;
  let e = parse_elem c in
  skip_ws c;
  e

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(** Tags and attribute names appearing anywhere in the element, used for
    keyword counting (Figure 7 counts XML tags and attributes). *)
let rec all_keywords e =
  (e.tag :: List.map fst e.attrs)
  @ List.concat_map
      (function Elem e' -> all_keywords e' | Text _ -> [])
      e.children

let distinct_keywords e = List.sort_uniq String.compare (all_keywords e)
