(** A small JSON value model with parser and printer.  Used for concrete
    request/response bodies in traffic traces and by the JSON signature
    matcher. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** {1 Printing} *)

val escape_string : string -> string
(** JSON string-content escaping (no surrounding quotes). *)

val to_string : t -> string
(** Compact serialization. *)

val pp : Format.formatter -> t -> unit

(** {1 Parsing} *)

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val of_string_opt : string -> t option

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an object; [None] for missing keys or non-objects. *)

val find_path : string list -> t -> t option
(** Nested field lookup along a key path. *)

val all_keys : t -> string list
(** Keys appearing anywhere in the value, with duplicates. *)

val distinct_keys : t -> string list
(** Sorted, deduplicated keys (Figure-7 keyword counting). *)

val equal : t -> t -> bool
