(** HTTP transactions as Extractocol reconstructs them (§2: URI, request
    data, request method, response data) and as the dynamic baselines
    capture them in traffic traces. *)

type meth = GET | POST | PUT | DELETE

val meth_to_string : meth -> string
val meth_of_string : string -> meth option

(** Message bodies.  [Query] is a form-encoded key/value body; [Binary]
    stands for opaque payloads such as media streams. *)
type body =
  | No_body
  | Query of (string * string) list
  | Json of Json.t
  | Xml of Xml.elem
  | Text of string
  | Binary of string

val body_kind : body -> string
val body_to_string : body -> string

type request = {
  req_meth : meth;
  req_uri : Uri.t;
  req_headers : (string * string) list;
  req_body : body;
}

type response = {
  resp_status : int;
  resp_headers : (string * string) list;
  resp_body : body;
}

type transaction = { tx_request : request; tx_response : response }

val request : ?headers:(string * string) list -> ?body:body -> meth -> Uri.t -> request
val response : ?status:int -> ?headers:(string * string) list -> body -> response

val header : string -> (string * string) list -> string option
(** Case-insensitive header lookup. *)

val pp_request : Format.formatter -> request -> unit

(** {1 Traffic traces}

    The mitmproxy analogue: every transaction with the UI/timer/push event
    that triggered it, used when attributing coverage differences between
    fuzzers (§5.1). *)

type trigger =
  | Ui_click of string  (** a plain clickable UI element *)
  | Ui_custom of string  (** custom UI widget (auto fuzzers fail on these) *)
  | Ui_action of string  (** action with side effects: purchase, payment... *)
  | Timer of string
  | Server_push of string
  | App_internal of string  (** follow-up request issued by app code *)

val trigger_to_string : trigger -> string

type trace_entry = { te_tx : transaction; te_trigger : trigger }
type trace = { tr_app : string; tr_entries : trace_entry list }

val trace_requests : trace -> request list
val trace_responses : trace -> response list
