(* HAR-style serialization of traffic traces.  The paper's dynamic
   baselines persist captured traffic (mitmproxy dumps) and re-load it for
   signature-validity checking; this module is that archive format: a
   JSON encoding of {!Http.trace} that round-trips exactly. *)

let json_of_headers headers =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) headers)

let headers_of_json = function
  | Json.Obj kvs ->
      Some
        (List.filter_map
           (fun (k, v) ->
             match v with Json.Str s -> Some (k, s) | _ -> None)
           kvs)
  | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
  | Json.List _ ->
      None

let json_of_body (b : Http.body) : Json.t =
  let tagged kind payload = Json.Obj (("kind", Json.Str kind) :: payload) in
  match b with
  | Http.No_body -> tagged "none" []
  | Http.Query kvs ->
      tagged "query"
        [ ("params", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs)) ]
  | Http.Json j -> tagged "json" [ ("value", j) ]
  | Http.Xml e -> tagged "xml" [ ("text", Json.Str (Xml.to_string e)) ]
  | Http.Text s -> tagged "text" [ ("text", Json.Str s) ]
  | Http.Binary s -> tagged "binary" [ ("bytes", Json.Str s) ]

let body_of_json (j : Json.t) : Http.body option =
  match Json.member "kind" j with
  | Some (Json.Str "none") -> Some Http.No_body
  | Some (Json.Str "query") -> (
      match Json.member "params" j with
      | Some (Json.Obj kvs) ->
          Some
            (Http.Query
               (List.filter_map
                  (fun (k, v) ->
                    match v with Json.Str s -> Some (k, s) | _ -> None)
                  kvs))
      | Some _ | None -> None)
  | Some (Json.Str "json") -> (
      match Json.member "value" j with
      | Some v -> Some (Http.Json v)
      | None -> None)
  | Some (Json.Str "xml") -> (
      match Json.member "text" j with
      | Some (Json.Str s) -> Option.map (fun e -> Http.Xml e) (Xml.of_string_opt s)
      | Some _ | None -> None)
  | Some (Json.Str "text") -> (
      match Json.member "text" j with
      | Some (Json.Str s) -> Some (Http.Text s)
      | Some _ | None -> None)
  | Some (Json.Str "binary") -> (
      match Json.member "bytes" j with
      | Some (Json.Str s) -> Some (Http.Binary s)
      | Some _ | None -> None)
  | Some _ | None -> None

let json_of_trigger (t : Http.trigger) : Json.t =
  let tag kind label =
    Json.Obj [ ("kind", Json.Str kind); ("label", Json.Str label) ]
  in
  match t with
  | Http.Ui_click l -> tag "click" l
  | Http.Ui_custom l -> tag "custom" l
  | Http.Ui_action l -> tag "action" l
  | Http.Timer l -> tag "timer" l
  | Http.Server_push l -> tag "push" l
  | Http.App_internal l -> tag "internal" l

let trigger_of_json (j : Json.t) : Http.trigger option =
  match (Json.member "kind" j, Json.member "label" j) with
  | Some (Json.Str kind), Some (Json.Str label) -> (
      match kind with
      | "click" -> Some (Http.Ui_click label)
      | "custom" -> Some (Http.Ui_custom label)
      | "action" -> Some (Http.Ui_action label)
      | "timer" -> Some (Http.Timer label)
      | "push" -> Some (Http.Server_push label)
      | "internal" -> Some (Http.App_internal label)
      | _ -> None)
  | _, _ -> None

let json_of_entry (e : Http.trace_entry) : Json.t =
  let req = e.Http.te_tx.Http.tx_request in
  let resp = e.Http.te_tx.Http.tx_response in
  Json.Obj
    [
      ( "request",
        Json.Obj
          [
            ("method", Json.Str (Http.meth_to_string req.Http.req_meth));
            ("uri", Json.Str (Uri.to_string req.Http.req_uri));
            ("headers", json_of_headers req.Http.req_headers);
            ("body", json_of_body req.Http.req_body);
          ] );
      ( "response",
        Json.Obj
          [
            ("status", Json.Int resp.Http.resp_status);
            ("headers", json_of_headers resp.Http.resp_headers);
            ("body", json_of_body resp.Http.resp_body);
          ] );
      ("trigger", json_of_trigger e.Http.te_trigger);
    ]

let entry_of_json (j : Json.t) : Http.trace_entry option =
  let ( let* ) = Option.bind in
  let* rj = Json.member "request" j in
  let* pj = Json.member "response" j in
  let* tj = Json.member "trigger" j in
  let* meth =
    match Json.member "method" rj with
    | Some (Json.Str m) -> Http.meth_of_string m
    | Some _ | None -> None
  in
  let* uri =
    match Json.member "uri" rj with
    | Some (Json.Str u) -> Uri.of_string_opt u
    | Some _ | None -> None
  in
  let* req_headers = Option.bind (Json.member "headers" rj) headers_of_json in
  let* req_body = Option.bind (Json.member "body" rj) body_of_json in
  let* status =
    match Json.member "status" pj with
    | Some (Json.Int s) -> Some s
    | Some _ | None -> None
  in
  let* resp_headers = Option.bind (Json.member "headers" pj) headers_of_json in
  let* resp_body = Option.bind (Json.member "body" pj) body_of_json in
  let* trigger = trigger_of_json tj in
  Some
    {
      Http.te_tx =
        {
          Http.tx_request =
            {
              Http.req_meth = meth;
              req_uri = uri;
              req_headers;
              req_body;
            };
          tx_response =
            {
              Http.resp_status = status;
              resp_headers;
              resp_body;
            };
        };
      te_trigger = trigger;
    }

let to_json (t : Http.trace) : Json.t =
  Json.Obj
    [
      ("app", Json.Str t.Http.tr_app);
      ("entries", Json.List (List.map json_of_entry t.Http.tr_entries));
    ]

let of_json (j : Json.t) : Http.trace option =
  match (Json.member "app" j, Json.member "entries" j) with
  | Some (Json.Str app), Some (Json.List entries) ->
      let parsed = List.map entry_of_json entries in
      if List.for_all Option.is_some parsed then
        Some
          {
            Http.tr_app = app;
            tr_entries = List.filter_map Fun.id parsed;
          }
      else None
  | _, _ -> None

let to_string (t : Http.trace) : string = Json.to_string (to_json t)

let of_string (s : string) : Http.trace option =
  Option.bind (Json.of_string_opt s) of_json
