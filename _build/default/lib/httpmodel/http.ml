(* HTTP transactions as Extractocol reconstructs them (paper §2: an HTTP
   transaction consists of URI, request data, request method, and response
   data) and as the dynamic baselines capture them in traffic traces. *)

type meth = GET | POST | PUT | DELETE

let meth_to_string = function
  | GET -> "GET"
  | POST -> "POST"
  | PUT -> "PUT"
  | DELETE -> "DELETE"

let meth_of_string = function
  | "GET" -> Some GET
  | "POST" -> Some POST
  | "PUT" -> Some PUT
  | "DELETE" -> Some DELETE
  | _ -> None

(** Message bodies.  [Query] is a form-encoded key/value body (the paper's
    "query string" request bodies); [Binary] stands for opaque payloads such
    as media streams. *)
type body =
  | No_body
  | Query of (string * string) list
  | Json of Json.t
  | Xml of Xml.elem
  | Text of string
  | Binary of string

let body_kind = function
  | No_body -> "none"
  | Query _ -> "query"
  | Json _ -> "json"
  | Xml _ -> "xml"
  | Text _ -> "text"
  | Binary _ -> "binary"

let body_to_string = function
  | No_body -> ""
  | Query kvs -> Uri.query_to_string kvs
  | Json j -> Json.to_string j
  | Xml x -> Xml.to_string x
  | Text s -> s
  | Binary s -> s

type request = {
  req_meth : meth;
  req_uri : Uri.t;
  req_headers : (string * string) list;
  req_body : body;
}

type response = {
  resp_status : int;
  resp_headers : (string * string) list;
  resp_body : body;
}

type transaction = { tx_request : request; tx_response : response }

let request ?(headers = []) ?(body = No_body) meth uri =
  { req_meth = meth; req_uri = uri; req_headers = headers; req_body = body }

let response ?(status = 200) ?(headers = []) body =
  { resp_status = status; resp_headers = headers; resp_body = body }

let header name msg_headers =
  List.assoc_opt (String.lowercase_ascii name)
    (List.map (fun (k, v) -> (String.lowercase_ascii k, v)) msg_headers)

let pp_request fmt r =
  Fmt.pf fmt "%s %a" (meth_to_string r.req_meth) Uri.pp r.req_uri;
  match r.req_body with
  | No_body -> ()
  | b -> Fmt.pf fmt " [%s body %d bytes]" (body_kind b) (String.length (body_to_string b))

(* ------------------------------------------------------------------ *)
(* Traffic traces                                                     *)
(* ------------------------------------------------------------------ *)

(** How a captured transaction was triggered during dynamic execution —
    used when attributing coverage differences between fuzzers (§5.1). *)
type trigger =
  | Ui_click of string  (** a plain clickable UI element *)
  | Ui_custom of string  (** custom UI widget (auto fuzzers fail on these) *)
  | Ui_action of string  (** action with side effects: purchase, payment ... *)
  | Timer of string
  | Server_push of string
  | App_internal of string  (** follow-up request issued by app code *)

let trigger_to_string = function
  | Ui_click s -> "click:" ^ s
  | Ui_custom s -> "custom-ui:" ^ s
  | Ui_action s -> "action:" ^ s
  | Timer s -> "timer:" ^ s
  | Server_push s -> "push:" ^ s
  | App_internal s -> "internal:" ^ s

type trace_entry = { te_tx : transaction; te_trigger : trigger }

(** A captured traffic trace for one app run, the mitmproxy analogue. *)
type trace = { tr_app : string; tr_entries : trace_entry list }

let trace_requests tr = List.map (fun e -> e.te_tx.tx_request) tr.tr_entries
let trace_responses tr = List.map (fun e -> e.te_tx.tx_response) tr.tr_entries
