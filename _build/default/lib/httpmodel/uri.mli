(** URIs as understood by Extractocol's signature extractor: scheme, host,
    path and an ordered query string.  URIs parsed from wire strings keep
    the raw form so signature matching sees the exact bytes the client
    sent (including non-canonical shapes like a trailing ["?&"]). *)

type t = {
  scheme : string;  (** ["http"] or ["https"] *)
  host : string;
  path : string;  (** starts with ['/'] (or is empty) *)
  query : (string * string) list;
  raw : string option;  (** the exact wire string, when parsed from one *)
}

exception Parse_error of string

val make : ?scheme:string -> ?query:(string * string) list -> host:string -> path:string -> unit -> t

(** {1 Percent encoding} *)

val percent_encode : string -> string
val percent_decode : string -> string

(** {1 Query strings} *)

val query_to_string : (string * string) list -> string
val query_of_string : string -> (string * string) list

(** {1 Conversion} *)

val to_string : t -> string
(** The raw wire form when available, else the canonical rendering. *)

val of_string : string -> t
(** @raise Parse_error when the scheme is missing. *)

val of_string_opt : string -> t option
val pp : Format.formatter -> t -> unit

val path_segments : t -> string list
(** Path split on ['/'] with empty segments removed (URI-prefix grouping,
    Table 5). *)
