(** A concrete Limple interpreter: executes corpus apps against a
    simulated origin server and captures every HTTP transaction in a
    traffic trace — the substrate under the UI-fuzzing baselines of §5.1.
    Library classes are modelled concretely (the runtime counterpart of the
    semantic models the static analysis uses). *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Apk = Extr_apk.Apk
module Http = Extr_httpmodel.Http

exception Runtime_error of string

(** A registered framework callback: the kind of event that fires it and
    the receiving listener object. *)
type registration = { rg_kind : string; rg_listener : Rvalue.robj }

type t = {
  prog : Prog.t;
  apk : Apk.t;
  net : Http.request -> Http.response;  (** the origin server *)
  input : unit -> string;  (** fuzz input provider (EditText contents) *)
  mutable trace : Http.trace_entry list;  (** captured transactions, reversed *)
  mutable trigger : Http.trigger;  (** label for the current event *)
  mutable registrations : registration list;
  statics : (string * string, Rvalue.t) Hashtbl.t;
  db : (string, (string, string) Hashtbl.t) Hashtbl.t;  (** table → column → value *)
  mutable fuel : int;
}

val create :
  ?fuel:int -> net:(Http.request -> Http.response) -> input:(unit -> string) ->
  Apk.t -> t

val captured_trace : t -> Http.trace

val exec_method :
  t -> Ir.meth -> this:Rvalue.t option -> args:Rvalue.t list -> Rvalue.t
(** Execute one method.
    @raise Runtime_error on stuck states or fuel exhaustion. *)

val fire : t -> registration -> unit
(** Fire a registered callback with framework-provided arguments. *)

val launch : t -> Rvalue.t list
(** Run the activity lifecycle entry points; returns the activity
    instances. *)
