(* A concrete Limple interpreter: executes corpus apps against a simulated
   origin server and captures every HTTP transaction in a traffic trace —
   the substrate under the UI-fuzzing baselines of §5.1.  Library classes
   are modelled concretely (the runtime counterpart of the semantic models
   used by the static analysis). *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Api = Extr_semantics.Api
module Apk = Extr_apk.Apk
module Http = Extr_httpmodel.Http
module Uri = Extr_httpmodel.Uri
module Json = Extr_httpmodel.Json
module Xml = Extr_httpmodel.Xml
open Rvalue

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(** A registered framework callback: the kind of event that fires it and
    the receiving listener object. *)
type registration = { rg_kind : string; rg_listener : robj }

type t = {
  prog : Prog.t;
  apk : Apk.t;
  net : Http.request -> Http.response;  (** the origin server *)
  input : unit -> string;  (** fuzz input provider (EditText contents) *)
  mutable trace : Http.trace_entry list;  (** captured transactions, reversed *)
  mutable trigger : Http.trigger;  (** label for the current event *)
  mutable registrations : registration list;
  statics : (string * string, Rvalue.t) Hashtbl.t;
  db : (string, (string, string) Hashtbl.t) Hashtbl.t;  (** table → column → value *)
  mutable fuel : int;
}

let create ?(fuel = 2_000_000) ~net ~input (apk : Apk.t) =
  {
    prog = Prog.of_program apk.Apk.program;
    apk;
    net;
    input;
    trace = [];
    trigger = Http.App_internal "startup";
    registrations = [];
    statics = Hashtbl.create 8;
    db = Hashtbl.create 4;
    fuel;
  }

let captured_trace t =
  { Http.tr_app = t.apk.Apk.manifest.Apk.mf_label; tr_entries = List.rev t.trace }

(* ------------------------------------------------------------------ *)
(* Network                                                            *)
(* ------------------------------------------------------------------ *)

let perform_request t (req : Http.request) : Http.response =
  let resp = t.net req in
  t.trace <-
    { Http.te_tx = { Http.tx_request = req; tx_response = resp }; te_trigger = t.trigger }
    :: t.trace;
  resp

(* ------------------------------------------------------------------ *)
(* Frames and method invocation                                       *)
(* ------------------------------------------------------------------ *)

type frame = { locals : (string, Rvalue.t) Hashtbl.t }

let local_get frame name =
  match Hashtbl.find_opt frame.locals name with
  | Some v -> v
  | None -> Rnull

let local_set frame name v = Hashtbl.replace frame.locals name v

let eval_const = function
  | Ir.Cint n -> Rint n
  | Ir.Cbool b -> Rbool b
  | Ir.Cstr s -> Rstr s
  | Ir.Cnull -> Rnull

let eval_value frame = function
  | Ir.Const c -> eval_const c
  | Ir.Local v -> local_get frame v.Ir.vname

let eval_binop op a b =
  let int_op f =
    match (a, b) with
    | Rint x, Rint y -> Rint (f x y)
    | _, _ -> fail "numeric operands expected"
  in
  let cmp f = match (a, b) with
    | Rint x, Rint y -> Rbool (f (compare x y) 0)
    | Rstr x, Rstr y -> Rbool (f (compare x y) 0)
    | Rbool x, Rbool y -> Rbool (f (compare x y) 0)
    | Rnull, Rnull -> Rbool (f 0 0)
    | _, _ -> Rbool (f (compare (to_string a) (to_string b)) 0)
  in
  match op with
  | Ir.Add -> int_op ( + )
  | Ir.Sub -> int_op ( - )
  | Ir.Mul -> int_op ( * )
  | Ir.Div -> int_op ( / )
  | Ir.Eq -> cmp ( = )
  | Ir.Ne -> cmp ( <> )
  | Ir.Lt -> cmp ( < )
  | Ir.Le -> cmp ( <= )
  | Ir.Gt -> cmp ( > )
  | Ir.Ge -> cmp ( >= )
  | Ir.And -> Rbool (truthy a && truthy b)
  | Ir.Or -> Rbool (truthy a || truthy b)

(* ------------------------------------------------------------------ *)
(* App method execution                                               *)
(* ------------------------------------------------------------------ *)

let rec exec_method t (meth : Ir.meth) ~(this : Rvalue.t option)
    ~(args : Rvalue.t list) : Rvalue.t =
  let frame = { locals = Hashtbl.create 16 } in
  List.iteri
    (fun i (p : Ir.var) ->
      local_set frame p.Ir.vname (Option.value (List.nth_opt args i) ~default:Rnull))
    meth.Ir.m_params;
  (match this with Some v -> local_set frame "this" v | None -> ());
  let body = meth.Ir.m_body in
  let labels = Hashtbl.create 8 in
  Array.iteri
    (fun i s -> match s with Ir.Lab l -> Hashtbl.replace labels l i | _ -> ())
    body;
  let pc = ref 0 in
  let result = ref Rnull in
  let running = ref true in
  while !running && !pc < Array.length body do
    t.fuel <- t.fuel - 1;
    if t.fuel <= 0 then fail "out of fuel in %s.%s" meth.Ir.m_cls meth.Ir.m_name;
    (match body.(!pc) with
    | Ir.Assign (lhs, rhs) -> (
        let v = eval_expr t frame rhs in
        match lhs with
        | Ir.Lvar x ->
            local_set frame x.Ir.vname v;
            incr pc
        | Ir.Lfield (x, f) ->
            (match local_get frame x.Ir.vname with
            | Robj o -> set_slot o f.Ir.fname v
            | other -> fail "field store on %s" (to_string other));
            incr pc
        | Ir.Lsfield f ->
            Hashtbl.replace t.statics (f.Ir.fcls, f.Ir.fname) v;
            incr pc
        | Ir.Lelem (x, i) ->
            (match (local_get frame x.Ir.vname, eval_value frame i) with
            | Robj o, Rint idx -> set_slot o (string_of_int idx) v
            | _, _ -> fail "array store");
            incr pc)
    | Ir.InvokeStmt i ->
        ignore (eval_invoke t frame i);
        incr pc
    | Ir.If (v, l) ->
        if truthy (eval_value frame v) then pc := Hashtbl.find labels l
        else incr pc
    | Ir.Goto l -> pc := Hashtbl.find labels l
    | Ir.Lab _ | Ir.Nop -> incr pc
    | Ir.Return v ->
        (match v with Some value -> result := eval_value frame value | None -> ());
        running := false);
    ()
  done;
  !result

and eval_expr t frame (e : Ir.expr) : Rvalue.t =
  match e with
  | Ir.Val v -> eval_value frame v
  | Ir.Binop (op, a, b) -> eval_binop op (eval_value frame a) (eval_value frame b)
  | Ir.New cls -> Robj (new_obj cls)
  | Ir.NewArr _ -> Robj (new_obj "array")
  | Ir.IField (x, f) -> (
      match local_get frame x.Ir.vname with
      | Robj o -> (
          match slot o f.Ir.fname with
          | Some v -> v
          | None -> (
              match f.Ir.fty with
              | Ir.Int -> Rint 0
              | Ir.Bool -> Rbool false
              | Ir.Str -> Rstr ""
              | Ir.Void | Ir.Obj _ | Ir.Arr _ -> Rnull))
      | other -> fail "field read on %s" (to_string other))
  | Ir.SField f -> (
      match Hashtbl.find_opt t.statics (f.Ir.fcls, f.Ir.fname) with
      | Some v -> v
      | None -> Rnull)
  | Ir.AElem (x, i) -> (
      match (local_get frame x.Ir.vname, eval_value frame i) with
      | Robj o, Rint idx -> Option.value (slot o (string_of_int idx)) ~default:Rnull
      | _, _ -> Rnull)
  | Ir.ALen _ -> Rint 0
  | Ir.Cast (_, v) -> eval_value frame v
  | Ir.Invoke i -> eval_invoke t frame i

and eval_invoke t frame (i : Ir.invoke) : Rvalue.t =
  let base = Option.map (fun b -> local_get frame b.Ir.vname) i.Ir.ibase in
  let args = List.map (eval_value frame) i.Ir.iargs in
  (* Application target? *)
  let app_target =
    match i.Ir.ikind with
    | Ir.Static ->
        Prog.find_method t.prog (Ir.method_id_of_ref i.Ir.iref)
        |> Option.map (fun m -> (m, base))
    | Ir.Special | Ir.Virtual -> (
        match base with
        | Some (Robj o) when not (Api.is_library_class o.ro_cls) -> (
            match Prog.resolve_virtual t.prog ~cls:o.ro_cls ~mname:i.Ir.iref.Ir.mname with
            | Some m -> Some (m, base)
            | None -> None)
        | _ -> None)
  in
  match app_target with
  | Some (m, this) -> exec_method t m ~this ~args
  | None -> lib_call t i ~base ~args

(* ------------------------------------------------------------------ *)
(* Concrete library models                                            *)
(* ------------------------------------------------------------------ *)

and lib_call t (i : Ir.invoke) ~(base : Rvalue.t option) ~(args : Rvalue.t list)
    : Rvalue.t =
  let is = Api.invoke_is i in
  let name = i.Ir.iref.Ir.mname in
  let base_obj = match base with Some (Robj o) -> Some o | _ -> None in
  let req_obj () =
    match base_obj with Some o -> o | None -> fail "missing receiver for %s" name
  in
  let arg n = Option.value (List.nth_opt args n) ~default:Rnull in
  let str_arg n = to_string (arg n) in
  (* ---------------- AsyncTask (implicit control flow) ------------- *)
  if is ~cls:Api.async_task ~name:"execute" then begin
    (match base with
    | Some (Robj o) ->
        let run cb_name arglist =
          match
            Prog.find_method t.prog { Ir.id_cls = o.ro_cls; id_name = cb_name }
          with
          | Some cb -> exec_method t cb ~this:(Some (Robj o)) ~args:arglist
          | None -> Rnull
        in
        let result = run "doInBackground" args in
        ignore (run "onPostExecute" [ result ])
    | _ -> ());
    Rnull
  end
  (* ---------------- reflection ---------------- *)
  else if is ~cls:Api.java_class ~name:"forName" then begin
    let o = Rvalue.new_obj Api.java_class in
    set_slot o "name" (Rstr (str_arg 0));
    Robj o
  end
  else if is ~cls:Api.java_class ~name:"newInstance" then begin
    match Option.bind base_obj (fun o -> slot o "name") with
    | Some (Rstr cls) -> (
        let o = Rvalue.new_obj cls in
        (match Prog.find_method t.prog { Ir.id_cls = cls; id_name = "<init>" } with
        | Some init -> ignore (exec_method t init ~this:(Some (Robj o)) ~args:[])
        | None -> ());
        Robj o)
    | Some _ | None -> fail "newInstance on unresolved class"
  end
  else if is ~cls:Api.java_class ~name:"getMethod" then begin
    let m = Rvalue.new_obj Api.reflect_method in
    (match Option.bind base_obj (fun o -> slot o "name") with
    | Some v -> set_slot m "cls" v
    | None -> ());
    set_slot m "mname" (Rstr (str_arg 0));
    Robj m
  end
  else if is ~cls:Api.reflect_method ~name:"invoke" then begin
    match
      ( Option.bind base_obj (fun o -> slot o "cls"),
        Option.bind base_obj (fun o -> slot o "mname") )
    with
    | Some (Rstr cls), Some (Rstr mname) -> (
        match Prog.find_method t.prog { Ir.id_cls = cls; id_name = mname } with
        | Some m ->
            let this = List.nth_opt args 0 in
            let rest = match args with [] -> [] | _ :: r -> r in
            exec_method t m ~this ~args:rest
        | None -> fail "reflective target %s.%s not found" cls mname)
    | _, _ -> fail "invoke on unresolved method"
  end
  (* ---------------- StringBuilder / String ---------------- *)
  else if is ~cls:Api.string_builder ~name:"<init>" then begin
    set_slot (req_obj ()) "s"
      (Rstr (match args with [] -> "" | v :: _ -> to_string v));
    Rnull
  end
  else if is ~cls:Api.string_builder ~name:"append" then begin
    let o = req_obj () in
    let cur = match slot o "s" with Some (Rstr s) -> s | _ -> "" in
    set_slot o "s" (Rstr (cur ^ str_arg 0));
    Robj o
  end
  else if is ~cls:Api.string_builder ~name:"toString" then
    Rstr (match slot (req_obj ()) "s" with Some (Rstr s) -> s | _ -> "")
  else if is ~cls:Api.java_string ~name:"valueOf" then Rstr (str_arg 0)
  else if is ~cls:Api.java_string ~name:"concat" then
    Rstr (to_string (Option.value base ~default:Rnull) ^ str_arg 0)
  else if is ~cls:Api.java_string ~name:"trim" then
    Rstr (String.trim (to_string (Option.value base ~default:Rnull)))
  else if is ~cls:Api.java_string ~name:"equals" then
    Rbool (to_string (Option.value base ~default:Rnull) = str_arg 0)
  else if is ~cls:Api.java_string ~name:"length" then
    Rint (String.length (to_string (Option.value base ~default:Rnull)))
  else if is ~cls:Api.java_integer ~name:"parseInt" then
    Rint (match int_of_string_opt (String.trim (str_arg 0)) with Some n -> n | None -> 0)
  else if is ~cls:Api.java_integer ~name:"toString" then Rstr (str_arg 0)
  else if is ~cls:Api.url_encoder ~name:"encode" then
    Rstr (Uri.percent_encode (str_arg 0))
  (* ---------------- android UI / resources ---------------- *)
  else if is ~cls:Api.resources ~name:"getString" then begin
    match arg 0 with
    | Rint id -> Rstr (Option.value (Apk.resource_string t.apk id) ~default:"")
    | _ -> Rstr ""
  end
  else if is ~cls:Api.activity ~name:"getResources" then Robj (new_obj Api.resources)
  else if is ~cls:Api.activity ~name:"findViewById" then Robj (new_obj Api.view)
  else if is ~cls:Api.edit_text ~name:"<init>" then Rnull
  else if is ~cls:Api.edit_text ~name:"getText" then Rstr (t.input ())
  else if is ~cls:Api.view ~name:"setOnClickListener" then begin
    (match arg 0 with
    | Robj l -> t.registrations <- t.registrations @ [ { rg_kind = "click"; rg_listener = l } ]
    | _ -> ());
    Rnull
  end
  else if is ~cls:Api.timer ~name:"<init>" then Rnull
  else if is ~cls:Api.timer ~name:"schedule" then begin
    (match arg 0 with
    | Robj l -> t.registrations <- t.registrations @ [ { rg_kind = "timer"; rg_listener = l } ]
    | _ -> ());
    Rnull
  end
  else if is ~cls:Api.firebase_messaging ~name:"subscribe" then begin
    (match arg 0 with
    | Robj l -> t.registrations <- t.registrations @ [ { rg_kind = "push"; rg_listener = l } ]
    | _ -> ());
    Rnull
  end
  else if is ~cls:Api.location_manager ~name:"<init>" then Rnull
  else if is ~cls:Api.location_manager ~name:"requestLocationUpdates" then begin
    (match arg 0 with
    | Robj l ->
        t.registrations <- t.registrations @ [ { rg_kind = "location"; rg_listener = l } ]
    | _ -> ());
    Rnull
  end
  else if is ~cls:Api.location ~name:"getLat" then Rstr "37.566"
  else if is ~cls:Api.location ~name:"getLon" then Rstr "126.978"
  else if is ~cls:Api.text_view ~name:"<init>" then Rnull
  else if is ~cls:Api.text_view ~name:"setText" then Rnull
  else if is ~cls:Api.android_log ~name:"d" || is ~cls:Api.android_log ~name:"e" then
    Rnull
  (* ---------------- containers ---------------- *)
  else if is ~cls:Api.array_list ~name:"<init>" then begin
    set_slot (req_obj ()) "n" (Rint 0);
    Rnull
  end
  else if is ~cls:Api.array_list ~name:"add" then begin
    let o = req_obj () in
    let n = match slot o "n" with Some (Rint n) -> n | _ -> 0 in
    set_slot o (string_of_int n) (arg 0);
    set_slot o "n" (Rint (n + 1));
    Rbool true
  end
  else if is ~cls:Api.array_list ~name:"get" then begin
    match arg 0 with
    | Rint idx -> Option.value (slot (req_obj ()) (string_of_int idx)) ~default:Rnull
    | _ -> Rnull
  end
  else if is ~cls:Api.array_list ~name:"size" then
    (match slot (req_obj ()) "n" with Some (Rint n) -> Rint n | _ -> Rint 0)
  else if is ~cls:Api.hash_map ~name:"<init>" || is ~cls:Api.content_values ~name:"<init>"
  then Rnull
  else if is ~cls:Api.hash_map ~name:"put" || is ~cls:Api.content_values ~name:"put"
  then begin
    set_slot (req_obj ()) ("k:" ^ str_arg 0) (arg 1);
    Rnull
  end
  else if is ~cls:Api.hash_map ~name:"get" then
    Option.value (slot (req_obj ()) ("k:" ^ str_arg 0)) ~default:Rnull
  (* ---------------- org.apache.http ---------------- *)
  else if
    is ~cls:Api.http_get ~name:"<init>" || is ~cls:Api.http_post ~name:"<init>"
    || is ~cls:Api.http_put ~name:"<init>" || is ~cls:Api.http_delete ~name:"<init>"
  then begin
    set_slot (req_obj ()) "uri" (arg 0);
    Rnull
  end
  else if
    is ~cls:Api.http_request_base ~name:"setHeader"
    || is ~cls:Api.http_request_base ~name:"addHeader"
  then begin
    set_slot (req_obj ()) ("h:" ^ str_arg 0) (arg 1);
    Rnull
  end
  else if is ~cls:Api.http_request_base ~name:"setEntity" then begin
    set_slot (req_obj ()) "entity" (arg 0);
    Rnull
  end
  else if is ~cls:Api.string_entity ~name:"<init>" then begin
    set_slot (req_obj ()) "content" (Rstr (str_arg 0));
    Rnull
  end
  else if is ~cls:Api.form_entity ~name:"<init>" then begin
    set_slot (req_obj ()) "params" (arg 0);
    Rnull
  end
  else if is ~cls:Api.name_value_pair ~name:"<init>" then begin
    let o = req_obj () in
    set_slot o "k" (arg 0);
    set_slot o "v" (arg 1);
    Rnull
  end
  else if is ~cls:Api.default_http_client ~name:"<init>" then Rnull
  else if is ~cls:Api.http_client ~name:"execute" then begin
    match arg 0 with
    | Robj req -> Robj (apache_execute t req)
    | _ -> fail "execute without request"
  end
  else if is ~cls:Api.http_response ~name:"getEntity" then Robj (req_obj ())
  else if is ~cls:Api.http_entity ~name:"getContent" then Robj (req_obj ())
  else if
    is ~cls:Api.entity_utils ~name:"toString" || is ~cls:Api.io_utils ~name:"toString"
  then begin
    match arg 0 with
    | Robj o -> Option.value (slot o "body") ~default:(Rstr "")
    | _ -> Rstr ""
  end
  (* ---------------- HttpURLConnection ---------------- *)
  else if is ~cls:Api.java_url ~name:"<init>" then begin
    set_slot (req_obj ()) "uri" (arg 0);
    Rnull
  end
  else if is ~cls:Api.java_url ~name:"openConnection" then begin
    let conn = new_obj Api.http_url_connection in
    (match base_obj with
    | Some u -> (
        match slot u "uri" with Some v -> set_slot conn "uri" v | None -> ())
    | None -> ());
    set_slot conn "meth" (Rstr "GET");
    Robj conn
  end
  else if is ~cls:Api.http_url_connection ~name:"setRequestMethod" then begin
    set_slot (req_obj ()) "meth" (arg 0);
    Rnull
  end
  else if is ~cls:Api.http_url_connection ~name:"setRequestProperty" then begin
    set_slot (req_obj ()) ("h:" ^ str_arg 0) (arg 1);
    Rnull
  end
  else if is ~cls:Api.http_url_connection ~name:"getOutputStream" then begin
    let os = new_obj Api.output_stream in
    set_slot os "conn" (Robj (req_obj ()));
    Robj os
  end
  else if is ~cls:Api.output_stream ~name:"write" then begin
    (match (slot (req_obj ()) "conn", slot (req_obj ()) "sock") with
    | Some (Robj conn), _ -> set_slot conn "wbody" (Rstr (str_arg 0))
    | _, Some (Robj sock) ->
        let cur = match slot sock "wire" with Some (Rstr s) -> s | _ -> "" in
        set_slot sock "wire" (Rstr (cur ^ str_arg 0))
    | _, _ -> ());
    Rnull
  end
  else if is ~cls:Api.output_stream ~name:"close" then Rnull
  else if
    is ~cls:Api.http_url_connection ~name:"getInputStream"
    || is ~cls:Api.http_url_connection ~name:"getResponseCode"
  then begin
    let conn = req_obj () in
    (* Perform the exchange once per connection. *)
    (if slot conn "body" = None then
       let uri_s = to_string (Option.value (slot conn "uri") ~default:(Rstr "")) in
       let meth =
         Option.value
           (Http.meth_of_string (to_string (Option.value (slot conn "meth") ~default:(Rstr "GET"))))
           ~default:Http.GET
       in
       let headers = collect_headers conn in
       let body =
         match slot conn "wbody" with
         | Some (Rstr s) -> body_of_written s
         | _ -> Http.No_body
       in
       match Uri.of_string_opt uri_s with
       | Some uri ->
           let resp =
             perform_request t (Http.request ~headers ~body meth uri)
           in
           set_slot conn "body" (Rstr (Http.body_to_string resp.Http.resp_body));
           set_slot conn "status" (Rint resp.Http.resp_status)
       | None ->
           set_slot conn "body" (Rstr "");
           set_slot conn "status" (Rint 400));
    if name = "getResponseCode" then
      Option.value (slot conn "status") ~default:(Rint 200)
    else Robj conn
  end
  (* ---------------- raw sockets (§4 extension) ---------------- *)
  else if is ~cls:Api.java_socket ~name:"<init>" then begin
    let o = req_obj () in
    set_slot o "host" (arg 0);
    set_slot o "port" (arg 1);
    Rnull
  end
  else if is ~cls:Api.java_socket ~name:"getOutputStream" then begin
    let os = new_obj Api.output_stream in
    set_slot os "sock" (Robj (req_obj ()));
    Robj os
  end
  else if is ~cls:Api.java_socket ~name:"getInputStream" then begin
    let sock = req_obj () in
    (if slot sock "body" = None then begin
       let wire = to_string (Option.value (slot sock "wire") ~default:(Rstr "")) in
       let host = to_string (Option.value (slot sock "host") ~default:(Rstr "")) in
       (* "METHOD path HTTP/1.1\r\nheaders\r\n\r\nbody" *)
       match String.index_opt wire ' ' with
       | Some sp -> (
           let meth_s = String.sub wire 0 sp in
           let rest = String.sub wire (sp + 1) (String.length wire - sp - 1) in
           match (Http.meth_of_string meth_s, String.index_opt rest ' ') with
           | Some meth, Some sp2 -> (
               let path = String.sub rest 0 sp2 in
               match Uri.of_string_opt ("http://" ^ host ^ path) with
               | Some uri ->
                   let resp = perform_request t (Http.request meth uri) in
                   set_slot sock "body"
                     (Rstr (Http.body_to_string resp.Http.resp_body))
               | None -> set_slot sock "body" (Rstr ""))
           | _, _ -> set_slot sock "body" (Rstr ""))
       | None -> set_slot sock "body" (Rstr "")
     end);
    Robj sock
  end
  (* ---------------- volley ---------------- *)
  else if is ~cls:Api.request_queue ~name:"<init>" then Rnull
  else if is ~cls:Api.string_request ~name:"<init>" then begin
    let o = req_obj () in
    set_slot o "meth" (arg 0);
    set_slot o "uri" (arg 1);
    set_slot o "listener" (arg 2);
    Rnull
  end
  else if is ~cls:Api.request_queue ~name:"add" then begin
    (match arg 0 with
    | Robj req -> (
        let uri_s = to_string (Option.value (slot req "uri") ~default:(Rstr "")) in
        let meth =
          Option.value
            (Http.meth_of_string
               (to_string (Option.value (slot req "meth") ~default:(Rstr "GET"))))
            ~default:Http.GET
        in
        match Uri.of_string_opt uri_s with
        | Some uri ->
            let resp = perform_request t (Http.request meth uri) in
            let body_str = Http.body_to_string resp.Http.resp_body in
            (match slot req "listener" with
            | Some (Robj l) -> (
                match
                  Prog.find_method t.prog
                    { Ir.id_cls = l.ro_cls; id_name = "onResponse" }
                with
                | Some cb ->
                    ignore (exec_method t cb ~this:(Some (Robj l)) ~args:[ Rstr body_str ])
                | None -> ())
            | _ -> ())
        | None -> ())
    | _ -> ());
    Rnull
  end
  (* ---------------- okhttp ---------------- *)
  else if is ~cls:Api.okhttp_client ~name:"<init>" then Rnull
  else if is ~cls:Api.okhttp_builder ~name:"<init>" then begin
    set_slot (req_obj ()) "meth" (Rstr "GET");
    Rnull
  end
  else if is ~cls:Api.okhttp_builder ~name:"url" then begin
    set_slot (req_obj ()) "uri" (arg 0);
    Robj (req_obj ())
  end
  else if is ~cls:Api.okhttp_builder ~name:"header" then begin
    set_slot (req_obj ()) ("h:" ^ str_arg 0) (arg 1);
    Robj (req_obj ())
  end
  else if
    is ~cls:Api.okhttp_builder ~name:"post" || is ~cls:Api.okhttp_builder ~name:"put"
    || is ~cls:Api.okhttp_builder ~name:"delete"
  then begin
    let o = req_obj () in
    set_slot o "meth" (Rstr (String.uppercase_ascii name));
    set_slot o "rbody" (arg 0);
    Robj o
  end
  else if is ~cls:Api.okhttp_body ~name:"create" then begin
    let o = new_obj Api.okhttp_body in
    set_slot o "content" (Rstr (str_arg 0));
    Robj o
  end
  else if is ~cls:Api.okhttp_builder ~name:"build" then begin
    let o = req_obj () in
    let r = new_obj Api.okhttp_request in
    Hashtbl.iter (fun k v -> Hashtbl.replace r.ro_slots k v) o.ro_slots;
    Robj r
  end
  else if is ~cls:Api.okhttp_client ~name:"newCall" then begin
    let c = new_obj Api.okhttp_call in
    set_slot c "req" (arg 0);
    Robj c
  end
  else if is ~cls:Api.okhttp_call ~name:"execute" then begin
    match slot (req_obj ()) "req" with
    | Some (Robj req) ->
        let uri_s = to_string (Option.value (slot req "uri") ~default:(Rstr "")) in
        let meth =
          Option.value
            (Http.meth_of_string
               (to_string (Option.value (slot req "meth") ~default:(Rstr "GET"))))
            ~default:Http.GET
        in
        let headers = collect_headers req in
        let body =
          match slot req "rbody" with
          | Some (Robj rb) -> (
              match slot rb "content" with
              | Some (Rstr s) -> body_of_written s
              | _ -> Http.No_body)
          | _ -> Http.No_body
        in
        (match Uri.of_string_opt uri_s with
        | Some uri ->
            let resp = perform_request t (Http.request ~headers ~body meth uri) in
            let r = new_obj Api.okhttp_response in
            set_slot r "body" (Rstr (Http.body_to_string resp.Http.resp_body));
            Robj r
        | None -> Robj (new_obj Api.okhttp_response))
    | _ -> Robj (new_obj Api.okhttp_response)
  end
  else if is ~cls:Api.okhttp_response ~name:"body" then Robj (req_obj ())
  else if is ~cls:Api.okhttp_response_body ~name:"string" then
    Option.value (slot (req_obj ()) "body") ~default:(Rstr "")
  (* ---------------- media player ---------------- *)
  else if is ~cls:Api.media_player ~name:"<init>" then Rnull
  else if is ~cls:Api.media_player ~name:"setDataSource" then begin
    (match Uri.of_string_opt (str_arg 0) with
    | Some uri -> ignore (perform_request t (Http.request Http.GET uri))
    | None -> ());
    Rnull
  end
  else if is ~cls:Api.media_player ~name:"prepare" || is ~cls:Api.media_player ~name:"start"
  then Rnull
  (* ---------------- JSON ---------------- *)
  else if is ~cls:Api.json_object ~name:"<init>" then begin
    let o = req_obj () in
    (match args with
    | [] -> set_slot o "json" (Rjson (Json.Obj []))
    | v :: _ -> (
        match Json.of_string_opt (to_string v) with
        | Some j -> set_slot o "json" (Rjson j)
        | None -> set_slot o "json" (Rjson (Json.Obj []))));
    Rnull
  end
  else if is ~cls:Api.json_array ~name:"<init>" then begin
    let o = req_obj () in
    (match args with
    | [] -> set_slot o "json" (Rjson (Json.List []))
    | v :: _ -> (
        match Json.of_string_opt (to_string v) with
        | Some j -> set_slot o "json" (Rjson j)
        | None -> set_slot o "json" (Rjson (Json.List []))));
    Rnull
  end
  else if is ~cls:Api.json_object ~name:"put" then begin
    let o = req_obj () in
    let fields =
      match slot o "json" with Some (Rjson (Json.Obj fs)) -> fs | _ -> []
    in
    let v =
      match arg 1 with
      | Rint n -> Json.Int n
      | Rbool b -> Json.Bool b
      | Rjson j -> j
      | Robj jo -> (
          match slot jo "json" with Some (Rjson j) -> j | _ -> Json.Null)
      | other -> Json.Str (to_string other)
    in
    set_slot o "json" (Rjson (Json.Obj (fields @ [ (str_arg 0, v) ])));
    Robj o
  end
  else if is ~cls:Api.json_array ~name:"put" then begin
    let o = req_obj () in
    let items =
      match slot o "json" with Some (Rjson (Json.List l)) -> l | _ -> []
    in
    let v =
      match arg 0 with
      | Rint n -> Json.Int n
      | Rbool b -> Json.Bool b
      | Rjson j -> j
      | other -> Json.Str (to_string other)
    in
    set_slot o "json" (Rjson (Json.List (items @ [ v ])));
    Robj o
  end
  else if
    is ~cls:Api.json_object ~name:"toString" || is ~cls:Api.json_array ~name:"toString"
  then
    (match slot (req_obj ()) "json" with
    | Some (Rjson j) -> Rstr (Json.to_string j)
    | _ -> Rstr "{}")
  else if
    List.mem name
      [ "getString"; "optString"; "getInt"; "getBoolean"; "getJSONObject";
        "getJSONArray"; "has"; "length" ]
    && (is ~cls:Api.json_object ~name || is ~cls:Api.json_array ~name)
  then begin
    let j = match slot (req_obj ()) "json" with Some (Rjson j) -> j | _ -> Json.Null in
    let lookup () =
      match (arg 0, j) with
      | Rstr k, Json.Obj _ -> Json.member k j
      | Rint idx, Json.List items -> List.nth_opt items idx
      | _, _ -> None
    in
    match name with
    | "getString" | "optString" -> (
        match lookup () with
        | Some (Json.Str s) -> Rstr s
        | Some v -> Rstr (Json.to_string v)
        | None -> Rstr "")
    | "getInt" -> (
        match lookup () with Some (Json.Int n) -> Rint n | _ -> Rint 0)
    | "getBoolean" -> (
        match lookup () with Some (Json.Bool b) -> Rbool b | _ -> Rbool false)
    | "getJSONObject" | "getJSONArray" -> (
        let inner = new_obj i.Ir.iref.Ir.mcls in
        (match lookup () with
        | Some v -> set_slot inner "json" (Rjson v)
        | None -> set_slot inner "json" (Rjson Json.Null));
        Robj inner)
    | "has" -> Rbool (lookup () <> None)
    | "length" -> (
        match j with Json.List items -> Rint (List.length items) | _ -> Rint 0)
    | _ -> Rnull
  end
  (* ---------------- gson ---------------- *)
  else if is ~cls:Api.gson ~name:"<init>" then Rnull
  else if is ~cls:Api.gson ~name:"toJson" then begin
    match arg 0 with
    | Robj o ->
        let fields =
          Hashtbl.fold
            (fun k v acc ->
              match v with
              | Rint n -> (k, Json.Int n) :: acc
              | Rbool b -> (k, Json.Bool b) :: acc
              | other -> (k, Json.Str (to_string other)) :: acc)
            o.ro_slots []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        Rstr (Json.to_string (Json.Obj fields))
    | _ -> Rstr "{}"
  end
  else if is ~cls:Api.gson ~name:"fromJson" then begin
    let o = new_obj (str_arg 1) in
    (match Json.of_string_opt (str_arg 0) with
    | Some (Json.Obj fields) ->
        List.iter
          (fun (k, v) ->
            match v with
            | Json.Int n -> set_slot o k (Rint n)
            | Json.Bool b -> set_slot o k (Rbool b)
            | Json.Str s -> set_slot o k (Rstr s)
            | other -> set_slot o k (Rjson other))
          fields
    | _ -> ());
    Robj o
  end
  (* ---------------- XML ---------------- *)
  else if is ~cls:Api.xml_parser ~name:"parse" then begin
    match Xml.of_string_opt (str_arg 0) with
    | Some e -> Rxml e
    | None -> Rxml (Xml.element "empty" [])
  end
  else if is ~cls:Api.xml_element ~name:"getChild" then begin
    match base with
    | Some (Rxml e) -> (
        let tag = str_arg 0 in
        let child =
          List.find_map
            (function
              | Xml.Elem c when c.Xml.tag = tag -> Some c
              | _ -> None)
            e.Xml.children
        in
        match child with
        | Some c -> Rxml c
        | None -> Rxml (Xml.element tag []))
    | _ -> Rxml (Xml.element (str_arg 0) [])
  end
  else if is ~cls:Api.xml_element ~name:"getChildren" then begin
    let tag = str_arg 0 in
    let l = new_obj Api.array_list in
    let children =
      match base with
      | Some (Rxml e) ->
          List.filter_map
            (function Xml.Elem c when c.Xml.tag = tag -> Some c | _ -> None)
            e.Xml.children
      | _ -> []
    in
    set_slot l "n" (Rint (List.length children));
    List.iteri (fun idx c -> set_slot l (string_of_int idx) (Rxml c)) children;
    Robj l
  end
  else if is ~cls:Api.xml_element ~name:"getAttribute" then begin
    match base with
    | Some (Rxml e) ->
        Rstr (Option.value (List.assoc_opt (str_arg 0) e.Xml.attrs) ~default:"")
    | _ -> Rstr ""
  end
  else if is ~cls:Api.xml_element ~name:"getText" then begin
    match base with
    | Some (Rxml e) ->
        Rstr
          (String.concat ""
             (List.filter_map
                (function Xml.Text s -> Some s | Xml.Elem _ -> None)
                e.Xml.children))
    | _ -> Rstr ""
  end
  (* ---------------- SQLite ---------------- *)
  else if is ~cls:Api.sqlite_database ~name:"<init>" then Rnull
  else if
    is ~cls:Api.sqlite_database ~name:"insert" || is ~cls:Api.sqlite_database ~name:"update"
  then begin
    let table = str_arg 0 in
    let row =
      match Hashtbl.find_opt t.db table with
      | Some r -> r
      | None ->
          let r = Hashtbl.create 4 in
          Hashtbl.replace t.db table r;
          r
    in
    (match arg 1 with
    | Robj cv ->
        Hashtbl.iter
          (fun k v ->
            if String.length k > 2 && String.sub k 0 2 = "k:" then
              Hashtbl.replace row
                (String.sub k 2 (String.length k - 2))
                (to_string v))
          cv.ro_slots
    | _ -> ());
    Rnull
  end
  else if is ~cls:Api.sqlite_database ~name:"query" then begin
    let c = new_obj Api.cursor in
    set_slot c "table" (Rstr (str_arg 0));
    Robj c
  end
  else if is ~cls:Api.cursor ~name:"getString" then begin
    let table =
      to_string (Option.value (slot (req_obj ()) "table") ~default:(Rstr ""))
    in
    match Hashtbl.find_opt t.db table with
    | Some row -> Rstr (Option.value (Hashtbl.find_opt row (str_arg 0)) ~default:"")
    | None -> Rstr ""
  end
  else if is ~cls:Api.cursor ~name:"moveToNext" then Rbool false
  (* ---------------- intents ---------------- *)
  else if is ~cls:Api.intent ~name:"<init>" then begin
    set_slot (req_obj ()) "action" (arg 0);
    Rnull
  end
  else if is ~cls:Api.intent ~name:"putExtra" then begin
    set_slot (req_obj ()) ("x:" ^ str_arg 0) (arg 1);
    Rnull
  end
  else if is ~cls:Api.intent ~name:"getExtra" then
    Option.value (slot (req_obj ()) ("x:" ^ str_arg 0)) ~default:(Rstr "")
  else if is ~cls:Api.context ~name:"startService" then begin
    (* Dispatch to the intent service named by the intent's action: the
       implicit control flow Extractocol does not model (§4). *)
    (match arg 0 with
    | Robj it -> (
        let action = to_string (Option.value (slot it "action") ~default:(Rstr "")) in
        match
          Prog.find_method t.prog { Ir.id_cls = action; id_name = "onHandleIntent" }
        with
        | Some handler ->
            let svc = new_obj action in
            (match base with
            | Some act -> set_slot svc "act" act
            | None -> ());
            ignore (exec_method t handler ~this:(Some (Robj svc)) ~args:[ Robj it ])
        | None -> ())
    | _ -> ());
    Rnull
  end
  else fail "unmodelled library call %s.%s" i.Ir.iref.Ir.mcls name

(** Collect "h:"-prefixed header slots of a request-like object. *)
and collect_headers (o : robj) : (string * string) list =
  Hashtbl.fold
    (fun k v acc ->
      if String.length k > 2 && String.sub k 0 2 = "h:" then
        (String.sub k 2 (String.length k - 2), to_string v) :: acc
      else acc)
    o.ro_slots []
  |> List.sort compare

(** Interpret a written/entity body string as a typed HTTP body. *)
and body_of_written (s : string) : Http.body =
  match Json.of_string_opt s with
  | Some j -> Http.Json j
  | None ->
      if String.contains s '=' then Http.Query (Uri.query_of_string s)
      else Http.Text s

(** Perform an Apache-style exchange from a request object; returns the
    response object. *)
and apache_execute t (req : robj) : robj =
  let uri_s = to_string (Option.value (slot req "uri") ~default:(Rstr "")) in
  let meth =
    if req.ro_cls = Api.http_post then Http.POST
    else if req.ro_cls = Api.http_put then Http.PUT
    else if req.ro_cls = Api.http_delete then Http.DELETE
    else Http.GET
  in
  let headers = collect_headers req in
  let body =
    match slot req "entity" with
    | Some (Robj e) when e.ro_cls = Api.string_entity -> (
        match slot e "content" with
        | Some (Rstr s) -> body_of_written s
        | _ -> Http.No_body)
    | Some (Robj e) when e.ro_cls = Api.form_entity -> (
        match slot e "params" with
        | Some (Robj l) ->
            let n = match slot l "n" with Some (Rint n) -> n | _ -> 0 in
            let kvs =
              List.init n (fun idx ->
                  match slot l (string_of_int idx) with
                  | Some (Robj p) ->
                      ( to_string (Option.value (slot p "k") ~default:(Rstr "")),
                        to_string (Option.value (slot p "v") ~default:(Rstr "")) )
                  | _ -> ("", ""))
            in
            Http.Query kvs
        | _ -> Http.No_body)
    | _ -> Http.No_body
  in
  let resp_obj = new_obj Api.http_response in
  (match Uri.of_string_opt uri_s with
  | Some uri ->
      let resp = perform_request t (Http.request ~headers ~body meth uri) in
      set_slot resp_obj "body" (Rstr (Http.body_to_string resp.Http.resp_body));
      set_slot resp_obj "status" (Rint resp.Http.resp_status)
  | None ->
      set_slot resp_obj "body" (Rstr "");
      set_slot resp_obj "status" (Rint 400));
  resp_obj

(* ------------------------------------------------------------------ *)
(* Firing registered callbacks (driven by the fuzzers)                *)
(* ------------------------------------------------------------------ *)

(** Fire a registered callback with framework-provided arguments. *)
and fire t (r : registration) =
  let cb_name =
    match r.rg_kind with
    | "click" -> "onClick"
    | "timer" -> "run"
    | "push" -> "onMessage"
    | "location" -> "onLocationChanged"
    | other -> fail "unknown registration kind %s" other
  in
  match
    Prog.find_method t.prog { Ir.id_cls = r.rg_listener.ro_cls; id_name = cb_name }
  with
  | None -> ()
  | Some cb ->
      let args =
        match r.rg_kind with
        | "click" -> [ Robj (new_obj Api.view) ]
        | "location" ->
            let loc = new_obj Api.location in
            [ Robj loc ]
        | "push" -> [ Rstr "{\"note\":\"content-update\"}" ]
        | _ -> []
      in
      ignore (exec_method t cb ~this:(Some (Robj r.rg_listener)) ~args)

(** Launch the app: run activity lifecycle entry points.  Returns the
    activity instances created. *)
and launch t : Rvalue.t list =
  let entries = Apk.entry_points t.apk in
  let singletons : (string, robj) Hashtbl.t = Hashtbl.create 4 in
  List.filter_map
    (fun (r : Ir.method_ref) ->
      let mid = Ir.method_id_of_ref r in
      match Prog.find_method t.prog mid with
      | None -> None
      | Some m ->
          let this =
            if m.Ir.m_static then None
            else begin
              match Hashtbl.find_opt singletons mid.Ir.id_cls with
              | Some o -> Some (Robj o)
              | None ->
                  let o = new_obj mid.Ir.id_cls in
                  Hashtbl.replace singletons mid.Ir.id_cls o;
                  Some (Robj o)
            end
          in
          ignore (exec_method t m ~this ~args:[]);
          this)
    entries
