(* Concrete runtime values for the Limple interpreter. *)

module Json = Extr_httpmodel.Json
module Xml = Extr_httpmodel.Xml

type t =
  | Rnull
  | Rint of int
  | Rbool of bool
  | Rstr of string
  | Rjson of Json.t  (** parsed or under-construction JSON payloads *)
  | Rxml of Xml.elem  (** parsed XML elements *)
  | Robj of robj

and robj = {
  ro_id : int;
  ro_cls : string;
  ro_slots : (string, t) Hashtbl.t;  (** mutable — the concrete heap *)
}

let next_id = ref 0

let new_obj cls =
  incr next_id;
  { ro_id = !next_id; ro_cls = cls; ro_slots = Hashtbl.create 4 }

let slot o name = Hashtbl.find_opt o.ro_slots name
let set_slot o name v = Hashtbl.replace o.ro_slots name v

let to_string = function
  | Rnull -> "null"
  | Rint n -> string_of_int n
  | Rbool b -> string_of_bool b
  | Rstr s -> s
  | Rjson j -> Json.to_string j
  | Rxml e -> Xml.to_string e
  | Robj o -> Printf.sprintf "<%s#%d>" o.ro_cls o.ro_id

let truthy = function
  | Rbool b -> b
  | Rint n -> n <> 0
  | Rnull -> false
  | Rstr s -> s <> ""
  | Rjson _ | Rxml _ | Robj _ -> true
