lib/runtime/rvalue.ml: Extr_httpmodel Hashtbl Printf
