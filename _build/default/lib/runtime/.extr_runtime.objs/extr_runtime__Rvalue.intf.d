lib/runtime/rvalue.mli: Extr_httpmodel Hashtbl
