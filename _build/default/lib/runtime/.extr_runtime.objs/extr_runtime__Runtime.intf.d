lib/runtime/runtime.mli: Extr_apk Extr_httpmodel Extr_ir Hashtbl Rvalue
