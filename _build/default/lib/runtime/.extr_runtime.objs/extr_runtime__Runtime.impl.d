lib/runtime/runtime.ml: Array Extr_apk Extr_httpmodel Extr_ir Extr_semantics Hashtbl List Option Printf Rvalue String
