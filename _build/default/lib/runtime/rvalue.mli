(** Concrete runtime values for the Limple interpreter. *)

module Json = Extr_httpmodel.Json
module Xml = Extr_httpmodel.Xml

type t =
  | Rnull
  | Rint of int
  | Rbool of bool
  | Rstr of string
  | Rjson of Json.t  (** parsed or under-construction JSON payloads *)
  | Rxml of Xml.elem  (** parsed XML elements *)
  | Robj of robj

and robj = {
  ro_id : int;  (** unique allocation id *)
  ro_cls : string;
  ro_slots : (string, t) Hashtbl.t;  (** mutable — the concrete heap *)
}

val new_obj : string -> robj
(** Allocate a fresh object of the named class with a unique [ro_id]. *)

val slot : robj -> string -> t option
val set_slot : robj -> string -> t -> unit

val to_string : t -> string
(** Human-readable rendering; strings print unquoted (this is the value
    used when runtime values are spliced into HTTP messages). *)

val truthy : t -> bool
(** Branch interpretation: null/false/0/"" are false, everything else
    true. *)
