(** ProGuard-style identifier renaming (§3.4).  Application classes,
    methods and fields get semantically obscure names; library classes and
    framework-callback overrides keep theirs (dispatch must still work).
    Extractocol is insensitive to this renaming because its demarcation
    points and semantic models key on library signatures (verified in §5
    by re-analyzing obfuscated APKs). *)

module Ir = Extr_ir.Types

type mapping
(** The renaming map, kept only for ground-truth comparison in tests. *)

val preserved_method_names : string list
(** Constructors and framework callbacks that survive obfuscation. *)

val rename_class : mapping -> string -> string
val rename_method : mapping -> string -> string -> string
val rename_field : mapping -> string -> string -> string

val obfuscate : Apk.t -> Apk.t * mapping

val obfuscate_libraries : Apk.t -> Apk.t * mapping
(** The adversarial §3.4 case: rename the library classes and the library
    methods the app calls, throughout the program.  Semantic models stop
    matching until {!Deobfuscator} recovers the map. *)
