lib/apk/apk.ml: Extr_ir List
