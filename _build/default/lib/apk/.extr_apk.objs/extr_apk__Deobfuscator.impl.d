lib/apk/deobfuscator.ml: Apk Array Extr_ir Extr_semantics Hashtbl List Option
