lib/apk/obfuscator.ml: Apk Array Char Extr_ir Hashtbl List Option String
