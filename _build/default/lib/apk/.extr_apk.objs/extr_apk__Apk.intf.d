lib/apk/apk.mli: Extr_ir
