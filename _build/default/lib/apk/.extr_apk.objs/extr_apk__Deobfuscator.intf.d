lib/apk/deobfuscator.mli: Apk Extr_ir Hashtbl
