lib/apk/obfuscator.mli: Apk Extr_ir
