(* Library de-obfuscation (§3.4): "when library code included in our
   semantic model is obfuscated ... we pre-process the code to generate a
   map between the obfuscated identifier and the original one.  For this,
   we compare the signatures of the method contained in our semantic model
   to identify the class and method that has the most similar signature
   patterns."

   Identifier names are gone, so matching works on name-free signals: how
   the app *uses* each library class — the multiset of (arity, argument
   shapes, return shape) of its calls — plus two relational signals that
   link identities through the program: the concrete class a call returns,
   and the superclass edges among library classes.  A catalog of the known
   API surface provides the reference profiles; assignment is an iterated
   greedy search whose relational bonuses make each round less ambiguous. *)

module Ir = Extr_ir.Types
module Api = Extr_semantics.Api

(** Name-free shape of a type. *)
type shape = Svoid | Sint | Sbool | Sstr | Sobj | Sarr

let shape_of_ty = function
  | Ir.Void -> Svoid
  | Ir.Int -> Sint
  | Ir.Bool -> Sbool
  | Ir.Str -> Sstr
  | Ir.Obj _ -> Sobj
  | Ir.Arr _ -> Sarr

let shape_of_value = function
  | Ir.Const (Ir.Cint _) -> Sint
  | Ir.Const (Ir.Cbool _) -> Sbool
  | Ir.Const (Ir.Cstr _) -> Sstr
  | Ir.Const Ir.Cnull -> Sobj
  | Ir.Local v -> shape_of_ty v.Ir.vty

(** Expected relationship between an object argument and the library:
    either an application subclass of a known framework class (listener /
    task patterns) or a direct instance of a known library class. *)
type arg_rel =
  | App_subclass_of of string  (** exactly this framework superclass *)
  | Lib_instance_of of string  (** exactly this library class *)
  | Lib_subclass_of of string
      (** this library class or any library subclass (no identity
          propagation — the argument could be any of several classes) *)

type msig = {
  ms_name : string;
  ms_static : bool;
  ms_nargs : int;
  ms_args : shape list option;  (** [None]: polymorphic, don't match on args *)
  ms_arg_rel : (int * arg_rel) list;  (** argument-class relations *)
  ms_ret : shape;
  ms_ret_cls : string option;
      (** known class of an [Sobj] return — the relational dataflow signal *)
}

(** The known API surface: per library class, the method signatures apps
    call on it (names kept — they are the recovery targets). *)
let catalog : (string * msig list) list =
  let m ?args ?ret_cls ?(arg_rel = []) ?(static = false) name nargs ret =
    {
      ms_name = name;
      ms_static = static;
      ms_nargs = nargs;
      ms_args = args;
      ms_arg_rel = arg_rel;
      ms_ret = ret;
      ms_ret_cls = ret_cls;
    }
  in
  let open Api in
  [
    ( string_builder,
      [
        m ~args:[] "<init>" 0 Svoid; m ~args:[ Sstr ] "<init>" 1 Svoid;
        (* append's real overloads: the exact argument shapes let the
           builder profile outrank string-keyed container lookups. *)
        m ~args:[ Sstr ] ~ret_cls:string_builder "append" 1 Sobj;
        m ~args:[ Sint ] ~ret_cls:string_builder "append" 1 Sobj;
        m ~args:[ Sobj ] ~ret_cls:string_builder "append" 1 Sobj;
        m ~ret_cls:string_builder "append" 1 Sobj; m ~args:[] "toString" 0 Sstr;
      ] );
    ( java_string,
      [
        m ~static:true ~args:[ Sstr ] "valueOf" 1 Sstr;
        m ~static:true ~args:[ Sint ] "valueOf" 1 Sstr;
        m ~static:true ~args:[ Sobj ] "valueOf" 1 Sstr;
        m ~static:true "valueOf" 1 Sstr; m ~args:[ Sstr ] "concat" 1 Sstr;
        m ~args:[] "trim" 0 Sstr; m ~args:[ Sstr ] "equals" 1 Sbool;
        m ~args:[] "length" 0 Sint;
      ] );
    ( java_integer,
      [ m ~static:true ~args:[ Sstr ] "parseInt" 1 Sint; m ~static:true ~args:[ Sint ] "toString" 1 Sstr ] );
    (url_encoder, [ m ~static:true ~args:[ Sstr; Sstr ] "encode" 2 Sstr ]);
    (http_get, [ m ~args:[ Sstr ] "<init>" 1 Svoid ]);
    (http_post, [ m ~args:[ Sstr ] "<init>" 1 Svoid ]);
    (http_put, [ m ~args:[ Sstr ] "<init>" 1 Svoid ]);
    (http_delete, [ m ~args:[ Sstr ] "<init>" 1 Svoid ]);
    ( http_request_base,
      [
        m ~args:[ Sstr; Sstr ] "setHeader" 2 Svoid;
        m ~args:[ Sstr; Sstr ] "addHeader" 2 Svoid;
        m ~args:[ Sobj ] ~arg_rel:[ (0, Lib_subclass_of http_entity) ] "setEntity" 1 Svoid;
      ] );
    (default_http_client, [ m ~args:[] "<init>" 0 Svoid ]);
    (http_client, [ m ~args:[ Sobj ] ~arg_rel:[ (0, Lib_subclass_of http_request_base) ] ~ret_cls:http_response "execute" 1 Sobj ]);
    (http_response, [ m ~args:[] ~ret_cls:http_entity "getEntity" 0 Sobj ]);
    (http_entity, [ m ~args:[] ~ret_cls:input_stream "getContent" 0 Sobj ]);
    (entity_utils, [ m ~static:true ~args:[ Sobj ] ~arg_rel:[ (0, Lib_instance_of http_entity) ] "toString" 1 Sstr ]);
    (string_entity, [ m ~args:[ Sstr ] "<init>" 1 Svoid ]);
    (form_entity, [ m ~args:[ Sobj ] ~arg_rel:[ (0, Lib_instance_of array_list) ] "<init>" 1 Svoid ]);
    (name_value_pair, [ m ~args:[ Sstr; Sstr ] "<init>" 2 Svoid ]);
    ( array_list,
      [
        m ~args:[] "<init>" 0 Svoid; m "add" 1 Sbool;
        (* Apps routinely ignore add's boolean result; references written
           with a void return must still match. *)
        m ~args:[ Sobj ] "add" 1 Svoid;
        m "add" 1 Svoid;
        m ~args:[ Sint ] "get" 1 Sobj; m ~args:[] "size" 0 Sint;
      ] );
    (hash_map, [ m ~args:[] "<init>" 0 Svoid; m "put" 2 Svoid; m "get" 1 Sobj ]);
    (* EditText precedes the JSON trees: an (init, 0-arg string getter)
       profile is a widget read; JSON classes in real use carry keyed
       accessors that EditText cannot explain. *)
    (edit_text, [ m ~args:[] "<init>" 0 Svoid; m ~args:[] "getText" 0 Sstr ]);
    ( json_object,
      [
        m ~args:[] "<init>" 0 Svoid; m ~args:[ Sstr ] "<init>" 1 Svoid;
        m ~ret_cls:json_object "put" 2 Sobj;
        m ~args:[ Sstr ] "getString" 1 Sstr; m ~args:[ Sstr ] "optString" 1 Sstr;
        m ~args:[ Sstr ] "getInt" 1 Sint; m ~args:[ Sstr ] "getBoolean" 1 Sbool;
        m ~args:[ Sstr ] ~ret_cls:json_object "getJSONObject" 1 Sobj;
        m ~args:[ Sstr ] ~ret_cls:json_array "getJSONArray" 1 Sobj;
        m ~args:[ Sstr ] "has" 1 Sbool; m ~args:[] "toString" 0 Sstr;
      ] );
    ( json_array,
      [
        m ~args:[] "<init>" 0 Svoid; m ~args:[ Sstr ] "<init>" 1 Svoid;
        m ~ret_cls:json_array "put" 1 Sobj; m ~args:[] "length" 0 Sint;
        m ~args:[ Sint ] ~ret_cls:json_object "getJSONObject" 1 Sobj;
        m ~args:[ Sint ] "getString" 1 Sstr; m ~args:[] "toString" 0 Sstr;
      ] );
    ( gson,
      [
        m ~args:[] "<init>" 0 Svoid; m ~args:[ Sobj ] "toJson" 1 Sstr;
        m ~args:[ Sstr; Sstr ] "fromJson" 2 Sobj;
      ] );
    (xml_parser, [ m ~static:true ~args:[ Sstr ] ~ret_cls:xml_element "parse" 1 Sobj ]);
    ( xml_element,
      [
        m ~args:[ Sstr ] ~ret_cls:xml_element "getChild" 1 Sobj;
        m ~args:[ Sstr ] ~ret_cls:array_list "getChildren" 1 Sobj;
        m ~args:[ Sstr ] "getAttribute" 1 Sstr; m ~args:[] "getText" 0 Sstr;
      ] );
    ( activity,
      [
        m ~args:[] ~ret_cls:resources "getResources" 0 Sobj;
        m ~args:[ Sint ] ~ret_cls:view "findViewById" 1 Sobj;
      ] );
    (resources, [ m ~args:[ Sint ] "getString" 1 Sstr ]);
    (view, [ m ~args:[ Sobj ] ~arg_rel:[ (0, App_subclass_of on_click_listener) ] "setOnClickListener" 1 Svoid ]);
    (async_task, [ m "execute" 1 Svoid ]);
    ( sqlite_database,
      [
        m ~args:[] "<init>" 0 Svoid; m ~args:[ Sstr; Sobj ] ~arg_rel:[ (1, Lib_instance_of content_values) ] "insert" 2 Svoid;
        m ~args:[ Sstr; Sobj ] ~arg_rel:[ (1, Lib_instance_of content_values) ] "update" 2 Svoid;
        m ~args:[ Sstr ] ~ret_cls:cursor "query" 1 Sobj;
      ] );
    (content_values, [ m ~args:[] "<init>" 0 Svoid; m "put" 2 Svoid ]);
    (cursor, [ m ~args:[ Sstr ] "getString" 1 Sstr; m ~args:[] "moveToNext" 0 Sbool ]);
    (* A bare (write, close) profile reads as a stream before a media
       sink; real MediaPlayer usage also shows prepare/start. *)
    (output_stream, [ m ~args:[ Sstr ] "write" 1 Svoid; m ~args:[] "close" 0 Svoid ]);
    (* TextView precedes MediaPlayer: for an (init, one string setter)
       profile the UI widget is the likelier reading. *)
    (text_view, [ m ~args:[] "<init>" 0 Svoid; m ~args:[ Sstr ] "setText" 1 Svoid ]);
    ( media_player,
      [
        m ~args:[] "<init>" 0 Svoid; m ~args:[ Sstr ] "setDataSource" 1 Svoid;
        m ~args:[] "prepare" 0 Svoid; m ~args:[] "start" 0 Svoid;
      ] );
    ( location_manager,
      [ m ~args:[] "<init>" 0 Svoid; m ~args:[ Sobj ] ~arg_rel:[ (0, App_subclass_of location_listener) ] "requestLocationUpdates" 1 Svoid ] );
    (location, [ m ~args:[] "getLat" 0 Sstr; m ~args:[] "getLon" 0 Sstr ]);
    (android_log, [ m ~static:true ~args:[ Sstr; Sstr ] "d" 2 Svoid; m ~static:true ~args:[ Sstr; Sstr ] "e" 2 Svoid ]);
    ( intent,
      [
        m ~args:[ Sstr ] "<init>" 1 Svoid; m "putExtra" 2 Svoid;
        m ~args:[ Sstr ] "getExtra" 1 Sstr;
      ] );
    (context, [ m ~args:[ Sobj ] ~arg_rel:[ (0, Lib_instance_of intent) ] "startService" 1 Svoid ]);
    (timer, [ m ~args:[] "<init>" 0 Svoid; m ~args:[ Sobj; Sint ] ~arg_rel:[ (0, App_subclass_of timer_task) ] "schedule" 2 Svoid ]);
    (firebase_messaging, [ m ~static:true ~args:[ Sobj ] ~arg_rel:[ (0, App_subclass_of messaging_service) ] "subscribe" 1 Svoid ]);
    (request_queue, [ m ~args:[] "<init>" 0 Svoid; m ~args:[ Sobj ] ~arg_rel:[ (0, Lib_instance_of string_request) ] "add" 1 Svoid ]);
    (string_request, [ m ~args:[ Sstr; Sstr; Sobj ] "<init>" 3 Svoid ]);
    ( okhttp_client,
      [
        m ~args:[] "<init>" 0 Svoid;
        m ~args:[ Sobj ] ~arg_rel:[ (0, Lib_instance_of okhttp_request) ]
          ~ret_cls:okhttp_call "newCall" 1 Sobj;
      ] );
    ( okhttp_builder,
      [
        m ~args:[] "<init>" 0 Svoid;
        m ~args:[ Sstr ] ~ret_cls:okhttp_builder "url" 1 Sobj;
        m ~args:[ Sstr; Sstr ] ~ret_cls:okhttp_builder "header" 2 Sobj;
        m ~args:[ Sobj ] ~arg_rel:[ (0, Lib_instance_of okhttp_body) ]
          ~ret_cls:okhttp_builder "post" 1 Sobj;
        m ~args:[ Sobj ] ~arg_rel:[ (0, Lib_instance_of okhttp_body) ]
          ~ret_cls:okhttp_builder "put" 1 Sobj;
        m ~args:[ Sobj ] ~arg_rel:[ (0, Lib_instance_of okhttp_body) ]
          ~ret_cls:okhttp_builder "delete" 1 Sobj;
        m ~args:[] ~ret_cls:okhttp_request "build" 0 Sobj;
      ] );
    (okhttp_body, [ m ~static:true ~args:[ Sstr ] ~ret_cls:okhttp_body "create" 1 Sobj ]);
    (okhttp_call, [ m ~args:[] ~ret_cls:okhttp_response "execute" 0 Sobj ]);
    (okhttp_response, [ m ~args:[] ~ret_cls:okhttp_response_body "body" 0 Sobj ]);
    (okhttp_response_body, [ m ~args:[] "string" 0 Sstr ]);
    (* Reflection ranks below the HTTP stacks: a lone static (str)->self
       factory profile reads as RequestBody.create first; a genuinely
       reflective profile also shows newInstance/getMethod. *)
    ( java_class,
      [
        m ~static:true ~args:[ Sstr ] ~ret_cls:java_class "forName" 1 Sobj;
        m ~args:[] "newInstance" 0 Sobj;
        m ~args:[ Sstr ] ~ret_cls:reflect_method "getMethod" 1 Sobj;
      ] );
    (reflect_method, [ m "invoke" 1 Sobj; m "invoke" 2 Sobj ]);
    ( java_url,
      [
        m ~args:[ Sstr ] "<init>" 1 Svoid;
        m ~args:[] ~ret_cls:http_url_connection "openConnection" 0 Sobj;
      ] );
    ( http_url_connection,
      [
        m ~args:[ Sstr ] "setRequestMethod" 1 Svoid;
        m ~args:[ Sstr; Sstr ] "setRequestProperty" 2 Svoid;
        m ~args:[] ~ret_cls:output_stream "getOutputStream" 0 Sobj;
        m ~args:[] ~ret_cls:input_stream "getInputStream" 0 Sobj;
        m ~args:[] "getResponseCode" 0 Sint;
      ] );
    (io_utils, [ m ~static:true ~args:[ Sobj ] ~arg_rel:[ (0, Lib_instance_of input_stream) ] "toString" 1 Sstr ]);
    ( java_socket,
      [
        m ~args:[ Sstr; Sint ] "<init>" 2 Svoid;
        m ~args:[] ~ret_cls:output_stream "getOutputStream" 0 Sobj;
        m ~args:[] ~ret_cls:input_stream "getInputStream" 0 Sobj;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Usage profiles of the obfuscated program                            *)
(* ------------------------------------------------------------------ *)

(** Observed class relationship of an object argument. *)
type arg_obs =
  | Obs_app_subclass of string  (** app class extending this obf lib class *)
  | Obs_lib of string  (** direct instance of this obf lib class *)
  | Obs_other

type usage = {
  u_name : string;  (** possibly-obfuscated method name *)
  u_static : bool;  (** static call (no receiver) *)
  u_args : shape list;
  u_arg_obs : arg_obs list;  (** per-argument class observations *)
  u_ret : shape;
  u_ret_cls : string option;  (** obfuscated class of an [Sobj] return *)
}

(** For each (possibly renamed) library class: the usages observed on it.
    Calls are attributed to the receiver's static class when it is a
    library class — this distinguishes e.g. the HttpGet/HttpPost
    subclasses of a shared request base. *)
let usage_profiles (prog : Ir.program) : (string, usage list) Hashtbl.t =
  let lib_names = Hashtbl.create 32 in
  List.iter
    (fun c -> if c.Ir.c_library then Hashtbl.replace lib_names c.Ir.c_name ())
    prog.Ir.p_classes;
  (* Superclass of application classes, for listener-pattern detection. *)
  let app_supers = Hashtbl.create 32 in
  List.iter
    (fun c ->
      if not c.Ir.c_library then
        match c.Ir.c_super with
        | Some s -> Hashtbl.replace app_supers c.Ir.c_name s
        | None -> ())
    prog.Ir.p_classes;
  let observe_arg v =
    match v with
    | Ir.Local { Ir.vty = Ir.Obj c; _ } when Hashtbl.mem lib_names c -> Obs_lib c
    | Ir.Local { Ir.vty = Ir.Obj c; _ } -> (
        match Hashtbl.find_opt app_supers c with
        | Some s when Hashtbl.mem lib_names s -> Obs_app_subclass s
        | Some _ | None -> Obs_other)
    | Ir.Const _ | Ir.Local _ -> Obs_other
  in
  let profiles = Hashtbl.create 32 in
  let add cls u =
    let cur = Option.value (Hashtbl.find_opt profiles cls) ~default:[] in
    if not (List.mem u cur) then Hashtbl.replace profiles cls (u :: cur)
  in
  List.iter
    (fun c ->
      if not c.Ir.c_library then
        List.iter
          (fun (m : Ir.meth) ->
            Array.iter
              (fun stmt ->
                match Ir.stmt_invoke stmt with
                | Some i when Hashtbl.mem lib_names i.Ir.iref.Ir.mcls ->
                    let owner =
                      match i.Ir.ibase with
                      | Some { Ir.vty = Ir.Obj c; _ } when Hashtbl.mem lib_names c
                        ->
                          c
                      | Some _ | None -> i.Ir.iref.Ir.mcls
                    in
                    add owner
                      {
                        u_name = i.Ir.iref.Ir.mname;
                        u_static = i.Ir.ikind = Ir.Static;
                        u_args = List.map shape_of_value i.Ir.iargs;
                        u_arg_obs = List.map observe_arg i.Ir.iargs;
                        u_ret = shape_of_ty i.Ir.iref.Ir.mret;
                        u_ret_cls =
                          (match i.Ir.iref.Ir.mret with
                          | Ir.Obj rc when Hashtbl.mem lib_names rc -> Some rc
                          | Ir.Obj _ | Ir.Void | Ir.Int | Ir.Bool | Ir.Str
                          | Ir.Arr _ ->
                              None);
                      }
                | Some _ | None -> ())
              m.Ir.m_body)
          c.Ir.c_methods)
    prog.Ir.p_classes;
  profiles

(* ------------------------------------------------------------------ *)
(* Matching                                                           *)
(* ------------------------------------------------------------------ *)

(** Signature-defining methods: a profile that never once uses the
    class's core operation (a StringBuilder that never appends, a
    MediaPlayer that never sets a data source) is probably not that
    class, however well its incidental constructors and toString match. *)
let core_methods : (string * string) list =
  let open Api in
  [
    (string_builder, "append");
    (media_player, "setDataSource");
  ]

(** Framework-callback names survive obfuscation (dispatch needs them), so
    the methods an application subclass overrides fingerprint its library
    superclass: a renamed class extended by an app class defining
    [onCreate] can only be Activity. *)
let subclass_fingerprints : (string * string list) list =
  let open Api in
  [
    (activity, [ "onCreate"; "onResume"; "onStart"; "onDestroy" ]);
    (async_task, [ "doInBackground"; "onPostExecute"; "onPreExecute" ]);
    (on_click_listener, [ "onClick" ]);
    (intent_service, [ "onHandleIntent" ]);
    (timer_task, [ "run" ]);
    (messaging_service, [ "onMessageReceived" ]);
    (location_listener, [ "onLocationChanged" ]);
    (volley_listener, [ "onResponse"; "onErrorResponse" ]);
  ]

(** Catalog entry of a class including methods inherited from its library
    superclasses (profiles attribute calls to the receiver's class). *)
let entry_with_inherited known_cls : msig list =
  let rec up cls acc =
    let acc = acc @ Option.value (List.assoc_opt cls catalog) ~default:[] in
    match Api.library_super cls with Some s -> up s acc | None -> acc
  in
  let entry = up known_cls [] in
  (* Only entity-enclosing requests (POST/PUT) carry setEntity; GET and
     DELETE inherit the rest of HttpRequestBase but not the body setter.
     This is the discriminator that separates the otherwise constructor-
     identical request classes. *)
  if known_cls = Api.http_get || known_cls = Api.http_delete then
    List.filter (fun s -> s.ms_name <> "setEntity") entry
  else entry

let sig_compatible (u : usage) (s : msig) =
  (* Constructors keep the <init> token under obfuscation, so they only
     match each other; static calls only match static catalog methods. *)
  (u.u_name = "<init>") = (s.ms_name = "<init>")
  && u.u_static = s.ms_static
  && List.length u.u_args = s.ms_nargs
  && u.u_ret = s.ms_ret
  && match s.ms_args with None -> true | Some args -> args = u.u_args

(** Score a candidate (obfuscated class, known class) pair under a partial
    assignment: compatible usages score positively, unexplained ones
    penalize, and relational consistency — the observed return class
    already assigned to the catalog's return class, the obfuscated
    superclass assigned to the catalog superclass — earns large bonuses
    (and inconsistency large penalties). *)
let arg_rel_score ~assigned (u : usage) (s : msig) =
  List.fold_left
    (fun acc (i, rel) ->
      match (rel, List.nth_opt u.u_arg_obs i) with
      | App_subclass_of c, Some (Obs_app_subclass a)
      | Lib_instance_of c, Some (Obs_lib a) -> (
          match Hashtbl.find_opt assigned a with
          | Some c' when c' = c -> acc + 8
          | Some _ -> acc - 8
          | None -> acc + 1 (* kinds agree; identity still open *))
      | Lib_subclass_of c, Some (Obs_lib a) -> (
          match Hashtbl.find_opt assigned a with
          | Some c' when Api.library_subclass ~sub:c' ~super:c -> acc + 8
          | Some _ -> acc - 8
          | None -> acc + 1)
      | (App_subclass_of _ | Lib_instance_of _ | Lib_subclass_of _), _ -> acc - 4)
    0 s.ms_arg_rel

let score ~assigned ~obf_supers ~constraints ~app_overrides obf_cls
    (usages : usage list) known_cls : int =
  let entry = entry_with_inherited known_cls in
  (* Subtype constraints harvested from committed callers: a class passed
     where the catalog demands a subclass of C must itself resolve inside
     C's subtree. *)
  let constraint_bonus =
    List.fold_left
      (fun acc super ->
        if Api.library_subclass ~sub:known_cls ~super then acc + 8 else acc - 8)
      0
      (Hashtbl.find_all constraints obf_cls)
  in
  let base =
    List.fold_left
      (fun acc u ->
        let compatible = List.filter (sig_compatible u) entry in
        if compatible = [] then acc - 4
        else
          (* Interpret the usage as the best-scoring compatible catalog
             signature. *)
          let best =
            List.fold_left
              (fun best s ->
                let ret_rel =
                  match u.u_ret_cls with
                  | None -> 0
                  | Some b when b = obf_cls ->
                      (* Self-returning call: the builder-pattern
                         fingerprint (StringBuilder.append, okhttp
                         Request.Builder chains) verifies against the
                         candidate itself. *)
                      if s.ms_ret_cls = Some known_cls then 8
                      else if s.ms_ret_cls <> None then -8
                      else 0
                  | Some b -> (
                      match Hashtbl.find_opt assigned b with
                      | None ->
                          (* A self-returning signature (append, builder
                             chains) cannot produce a class other than the
                             receiver's own. *)
                          if s.ms_ret_cls = Some known_cls then -8
                          else if s.ms_ret_cls <> None then 1
                          else 0
                      | Some c ->
                          if s.ms_ret_cls = Some c then 8
                          else if s.ms_ret_cls <> None then -8
                          else 0)
                in
                (* Exact argument-shape signatures outrank polymorphic
                   ones, so e.g. setText(String) beats the type-generic
                   ArrayList.add for a (string) usage. *)
                let precision = if s.ms_args <> None then 1 else 0 in
                max best (2 + precision + ret_rel + arg_rel_score ~assigned u s))
              min_int compatible
          in
          acc + best)
      0 usages
  in
  let super_bonus =
    match (Hashtbl.find_opt obf_supers obf_cls, Api.library_super known_cls) with
    | Some obf_super, Some known_super -> (
        match Hashtbl.find_opt assigned obf_super with
        | Some c when c = known_super -> 6
        | Some _ -> -10
        | None -> 0)
    | Some _, None | None, Some _ -> -3
    | None, None -> 1
  in
  let core_penalty =
    match List.assoc_opt known_cls core_methods with
    | None -> 0
    | Some core -> (
        let core_sigs = List.filter (fun m -> m.ms_name = core) entry in
        match core_sigs with
        | [] -> 0
        | _ :: _ ->
            if
              List.exists
                (fun u -> List.exists (sig_compatible u) core_sigs)
                usages
            then 0
            else -3)
  in
  let fingerprint_bonus =
    match Hashtbl.find_opt app_overrides obf_cls with
    | None -> 0
    | Some overrides -> (
        match List.assoc_opt known_cls subclass_fingerprints with
        | Some names when List.exists (fun n -> List.mem n names) overrides ->
            8
        | Some _ -> -4
        | None -> -6 (* apps do not subclass this library class *))
  in
  base + super_bonus + constraint_bonus + fingerprint_bonus + core_penalty

type mapping = {
  dm_classes : (string * string) list;  (** obfuscated class → known class *)
  dm_methods : ((string * string) * string) list;
      (** (obfuscated class, obfuscated method) → known method *)
}

(** Recover the obfuscated-library map: iterated greedy assignment with
    constraint propagation.  Each round scores every unassigned pair under
    the current partial assignment and commits the best one; superclass
    edges then pull in classes without usages of their own (interfaces the
    app only names in method references).  Method names are matched within
    each class by signature; residual ambiguities fall to the first unused
    candidate — the paper resolves those by inspecting decompiled code. *)
let recover (prog : Ir.program) : mapping =
  let profiles = usage_profiles prog in
  let obf_supers = Hashtbl.create 32 in
  let obf_lib_classes = ref [] in
  List.iter
    (fun c ->
      if c.Ir.c_library then begin
        obf_lib_classes := c.Ir.c_name :: !obf_lib_classes;
        match c.Ir.c_super with
        | Some s -> Hashtbl.replace obf_supers c.Ir.c_name s
        | None -> ()
      end)
    prog.Ir.p_classes;
  (* Methods that application classes define on each (obfuscated) library
     superclass they extend. *)
  let app_overrides : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (c : Ir.cls) ->
      if not c.Ir.c_library then
        match c.Ir.c_super with
        | Some s when Hashtbl.mem obf_supers s || List.mem s !obf_lib_classes
          ->
            let names = List.map (fun m -> m.Ir.m_name) c.Ir.c_methods in
            let prev = Option.value (Hashtbl.find_opt app_overrides s) ~default:[] in
            Hashtbl.replace app_overrides s (names @ prev)
        | Some _ | None -> ())
    prog.Ir.p_classes;
  let assigned = Hashtbl.create 32 in
  let used_known = Hashtbl.create 32 in
  let constraints : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let constrain obf super =
    if not (List.mem super (Hashtbl.find_all constraints obf)) then
      Hashtbl.add constraints obf super
  in
  let commit obf known =
    if (not (Hashtbl.mem assigned obf)) && not (Hashtbl.mem used_known known)
    then begin
      Hashtbl.replace assigned obf known;
      Hashtbl.replace used_known known ()
    end
  in
  (* Propagate assignments through argument relations: a committed class
     whose catalog signature constrains an argument's class identifies
     that argument's (obfuscated) class too. *)
  let propagate_args () =
    Hashtbl.iter
      (fun obf_cls usages ->
        match Hashtbl.find_opt assigned obf_cls with
        | None -> ()
        | Some known_cls ->
            let entry = entry_with_inherited known_cls in
            List.iter
              (fun (u : usage) ->
                List.iter
                  (fun s ->
                    if sig_compatible u s then
                      List.iter
                        (fun (i, rel) ->
                          match (rel, List.nth_opt u.u_arg_obs i) with
                          | App_subclass_of c, Some (Obs_app_subclass a)
                          | Lib_instance_of c, Some (Obs_lib a) ->
                              commit a c
                          | Lib_subclass_of c, Some (Obs_lib a) ->
                              constrain a c
                          | ( (App_subclass_of _ | Lib_instance_of _
                              | Lib_subclass_of _),
                              _ ) ->
                              ())
                        s.ms_arg_rel)
                  entry)
              usages)
      profiles
  in
  (* Propagate assignments through return classes: once a receiver is
     identified, an obfuscated class that one of its calls returns is
     identified by the catalog's declared return class — provided every
     compatible catalog signature agrees on it. *)
  let propagate_rets () =
    Hashtbl.iter
      (fun obf_cls usages ->
        match Hashtbl.find_opt assigned obf_cls with
        | None -> ()
        | Some known_cls ->
            let entry = entry_with_inherited known_cls in
            List.iter
              (fun (u : usage) ->
                match u.u_ret_cls with
                | Some b when not (Hashtbl.mem assigned b) -> (
                    let rets =
                      List.filter_map
                        (fun s -> if sig_compatible u s then Some s.ms_ret_cls else None)
                        entry
                    in
                    match List.sort_uniq compare rets with
                    | [ Some c ] -> commit b c
                    | [] | [ None ] | _ :: _ :: _ -> ())
                | Some _ | None -> ())
              usages)
      profiles
  in
  (* Propagate assignments along superclass edges in both directions. *)
  let propagate_supers () =
    let changed = ref true in
    while !changed do
      changed := false;
      Hashtbl.iter
        (fun obf obf_super ->
          match (Hashtbl.find_opt assigned obf, Hashtbl.find_opt assigned obf_super) with
          | Some known, None -> (
              match Api.library_super known with
              | Some known_super when not (Hashtbl.mem used_known known_super) ->
                  commit obf_super known_super;
                  changed := true
              | Some _ | None -> ())
          | (Some _ | None), _ -> ())
        obf_supers
    done
  in
  (* A sorted snapshot keeps the greedy search fully deterministic
     (ties broken by class names, independent of hash-table order). *)
  let profile_list =
    Hashtbl.fold (fun k v acc -> (k, List.sort compare v) :: acc) profiles []
    |> List.sort compare
  in
  (* Ties prefer earlier catalog entries: the catalog lists the more
     common API first (e.g. HttpPost before HttpPut). *)
  let rank = Hashtbl.create 64 in
  List.iteri (fun i (known, _) -> Hashtbl.replace rank known i) catalog;
  (* Unambiguous classes commit eagerly: an obfuscated class with exactly
     one positive candidate cannot be stolen by a higher-scoring ambiguous
     competitor. *)
  let commit_unique () =
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (obf_cls, usages) ->
          if not (Hashtbl.mem assigned obf_cls) then begin
            let candidates =
              List.filter
                (fun (known, _) ->
                  (not (Hashtbl.mem used_known known))
                  && score ~assigned ~obf_supers ~constraints ~app_overrides obf_cls usages known > 0)
                catalog
            in
            match candidates with
            | [ (known, _) ] ->
                commit obf_cls known;
                changed := true
            | [] | _ :: _ :: _ -> ()
          end)
        profile_list
    done
  in
  let continue_ = ref true in
  while !continue_ do
    (* Propagate to fixpoint: chains like client -> call -> response ->
       body resolve fully before the next (less certain) greedy pick. *)
    let stable = ref false in
    while not !stable do
      let before = Hashtbl.length assigned in
      commit_unique ();
      propagate_supers ();
      propagate_args ();
      propagate_rets ();
      stable := Hashtbl.length assigned = before
    done;
    let best = ref None in
    List.iter
      (fun (obf_cls, usages) ->
        if not (Hashtbl.mem assigned obf_cls) then
          List.iter
            (fun (known, _) ->
              if not (Hashtbl.mem used_known known) then begin
                let sc = score ~assigned ~obf_supers ~constraints ~app_overrides obf_cls usages known in
                let cand =
                  (sc, -Option.value (Hashtbl.find_opt rank known) ~default:0,
                   obf_cls, known)
                in
                match !best with
                | Some b when compare b cand >= 0 -> ()
                | Some _ | None -> if sc > 0 then best := Some cand
              end)
            catalog)
      profile_list;
    (match !best with
    | Some (_, _, obf, known) -> commit obf known
    | None -> continue_ := false);
    propagate_supers ();
    propagate_args ()
  done;
  let dm_classes = Hashtbl.fold (fun o k acc -> (o, k) :: acc) assigned [] in
  (* Method recovery inside matched classes; a usage of an inherited
     method is also mapped under the declaring class's obfuscated name so
     method-reference rewriting works regardless of attribution. *)
  let dm_methods = ref [] in
  let add_method key known_name =
    if not (List.mem_assoc key !dm_methods) then
      dm_methods := (key, known_name) :: !dm_methods
  in
  List.iter
    (fun (obf_cls, usages) ->
      match Hashtbl.find_opt assigned obf_cls with
      | None -> ()
      | Some known_cls ->
          let entry = entry_with_inherited known_cls in
          let taken = Hashtbl.create 8 in
          List.iter
            (fun (u : usage) ->
              if u.u_name <> "<init>" then begin
                let candidates =
                  List.filter
                    (fun s ->
                      sig_compatible u s
                      && (not (Hashtbl.mem taken s.ms_name))
                      && s.ms_name <> "<init>")
                    entry
                in
                let preferred =
                  match u.u_ret_cls with
                  | Some b -> (
                      match Hashtbl.find_opt assigned b with
                      | Some c ->
                          List.find_opt (fun s -> s.ms_ret_cls = Some c) candidates
                      | None -> None)
                  | None -> None
                in
                match (preferred, candidates) with
                | Some s, _ | None, s :: _ ->
                    Hashtbl.replace taken s.ms_name ();
                    add_method (obf_cls, u.u_name) s.ms_name
                | None, [] -> ()
              end)
            (List.sort compare usages))
    profile_list;
  { dm_classes = List.sort compare dm_classes; dm_methods = !dm_methods }

(* ------------------------------------------------------------------ *)
(* Applying the recovered map                                          *)
(* ------------------------------------------------------------------ *)

let lookup_class (m : mapping) name =
  Option.value (List.assoc_opt name m.dm_classes) ~default:name

let rec restore_ty m = function
  | Ir.Obj c -> Ir.Obj (lookup_class m c)
  | Ir.Arr t -> Ir.Arr (restore_ty m t)
  | (Ir.Void | Ir.Int | Ir.Bool | Ir.Str) as t -> t

let restore_var m (v : Ir.var) = { v with Ir.vty = restore_ty m v.Ir.vty }

let restore_value m = function
  | Ir.Local v -> Ir.Local (restore_var m v)
  | Ir.Const _ as c -> c

(** Restore a method name: the mapping may be keyed by the reference class
    or by the receiver's class (whichever carried the usage profile). *)
let restore_mname (m : mapping) (i : Ir.invoke) =
  let key1 = (i.Ir.iref.Ir.mcls, i.Ir.iref.Ir.mname) in
  match List.assoc_opt key1 m.dm_methods with
  | Some known -> known
  | None -> (
      match i.Ir.ibase with
      | Some { Ir.vty = Ir.Obj recv; _ } -> (
          match List.assoc_opt (recv, i.Ir.iref.Ir.mname) m.dm_methods with
          | Some known -> known
          | None -> i.Ir.iref.Ir.mname)
      | Some _ | None -> i.Ir.iref.Ir.mname)

let restore_invoke m (i : Ir.invoke) =
  {
    i with
    Ir.iref =
      {
        i.Ir.iref with
        Ir.mcls = lookup_class m i.Ir.iref.Ir.mcls;
        mname = restore_mname m i;
        mret = restore_ty m i.Ir.iref.Ir.mret;
      };
    ibase = Option.map (restore_var m) i.Ir.ibase;
    iargs = List.map (restore_value m) i.Ir.iargs;
  }

let restore_expr m = function
  | Ir.Val v -> Ir.Val (restore_value m v)
  | Ir.Binop (op, a, b) -> Ir.Binop (op, restore_value m a, restore_value m b)
  | Ir.New c -> Ir.New (lookup_class m c)
  | Ir.NewArr (t, n) -> Ir.NewArr (restore_ty m t, restore_value m n)
  | Ir.IField (x, f) -> Ir.IField (restore_var m x, f)
  | Ir.SField f -> Ir.SField f
  | Ir.AElem (a, i) -> Ir.AElem (restore_var m a, restore_value m i)
  | Ir.ALen a -> Ir.ALen (restore_var m a)
  | Ir.Invoke i -> Ir.Invoke (restore_invoke m i)
  | Ir.Cast (t, v) -> Ir.Cast (restore_ty m t, restore_value m v)

let restore_stmt m = function
  | Ir.Assign (l, e) ->
      let l' =
        match l with
        | Ir.Lvar v -> Ir.Lvar (restore_var m v)
        | Ir.Lfield (x, f) -> Ir.Lfield (restore_var m x, f)
        | Ir.Lsfield f -> Ir.Lsfield f
        | Ir.Lelem (a, i) -> Ir.Lelem (restore_var m a, restore_value m i)
      in
      Ir.Assign (l', restore_expr m e)
  | Ir.InvokeStmt i -> Ir.InvokeStmt (restore_invoke m i)
  | Ir.If (v, l) -> Ir.If (restore_value m v, l)
  | (Ir.Goto _ | Ir.Lab _ | Ir.Nop) as s -> s
  | Ir.Return v -> Ir.Return (Option.map (restore_value m) v)

(** Rewrite the program with the recovered identifiers so demarcation
    points and semantic models match again. *)
let apply (m : mapping) (prog : Ir.program) : Ir.program =
  {
    Ir.p_classes =
      List.map
        (fun c ->
          if c.Ir.c_library then
            {
              c with
              Ir.c_name = lookup_class m c.Ir.c_name;
              c_super = Option.map (lookup_class m) c.Ir.c_super;
            }
          else
            {
              c with
              Ir.c_super = Option.map (lookup_class m) c.Ir.c_super;
              c_methods =
                List.map
                  (fun (meth : Ir.meth) ->
                    {
                      meth with
                      Ir.m_params = List.map (restore_var m) meth.Ir.m_params;
                      m_ret = restore_ty m meth.Ir.m_ret;
                      m_body = Array.map (restore_stmt m) meth.Ir.m_body;
                    })
                  c.Ir.c_methods;
            })
        prog.Ir.p_classes;
    p_entries = prog.Ir.p_entries;
  }

(** Convenience: recover and apply on an APK. *)
let deobfuscate (apk : Apk.t) : Apk.t * mapping =
  let m = recover apk.Apk.program in
  ({ apk with Apk.program = apply m apk.Apk.program }, m)
