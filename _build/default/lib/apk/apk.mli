(** The APK container: Extractocol's only input.  Bundles the Limple
    program (the Dalvik bytecode analogue), the manifest, and the resource
    table (the analogue of res/values/strings.xml, referenced by resource
    ids — §3.1). *)

module Ir = Extr_ir.Types

type manifest = {
  mf_package : string;
  mf_label : string;
  mf_activities : string list;  (** activity classes; lifecycle methods are entries *)
}

type resources = (int * string) list
(** Resource table: integer resource ids to constant strings. *)

type t = {
  manifest : manifest;
  resources : resources;
  program : Ir.program;
}

val make :
  package:string ->
  ?label:string ->
  ?activities:string list ->
  ?resources:resources ->
  Ir.program ->
  t

val resource_string : t -> int -> string option

val entry_points : t -> Ir.method_ref list
(** The program's declared entries plus the lifecycle methods
    (onCreate/onResume/onStart) of manifest activities. *)
