(* The APK container: what Extractocol takes as its only input.  Bundles the
   Limple program (the Dalvik bytecode analogue), the manifest (package name
   and entry components) and the resource table (the analogue of
   res/values/strings.xml, referenced by Android resource ids). *)

module Ir = Extr_ir.Types

type manifest = {
  mf_package : string;
  mf_label : string;
  mf_activities : string list;  (** activity classes; lifecycle methods are entries *)
}

(** Resource table: integer resource ids to constant strings, as stored in
    user-defined files in the APK (§3.1 "we handle references to resource
    objects, such as Android.R, whose values are stored in user-defined
    files in the APK"). *)
type resources = (int * string) list

type t = {
  manifest : manifest;
  resources : resources;
  program : Ir.program;
}

let make ~package ?(label = package) ?(activities = []) ?(resources = []) program =
  {
    manifest = { mf_package = package; mf_label = label; mf_activities = activities };
    resources;
    program;
  }

let resource_string apk id = List.assoc_opt id apk.resources

(** Entry-point method references: the program's declared entries plus the
    lifecycle methods of manifest activities. *)
let entry_points apk =
  let lifecycle = [ "onCreate"; "onResume"; "onStart" ] in
  let activity_entries =
    List.concat_map
      (fun cls ->
        List.filter_map
          (fun mname ->
            let exists =
              List.exists
                (fun c ->
                  c.Ir.c_name = cls
                  && List.exists (fun m -> m.Ir.m_name = mname) c.Ir.c_methods)
                apk.program.Ir.p_classes
            in
            if exists then
              Some { Ir.mcls = cls; mname; mret = Ir.Void; nargs = 0 }
            else None)
          lifecycle)
      apk.manifest.mf_activities
  in
  apk.program.Ir.p_entries @ activity_entries
