(* ProGuard-style identifier renaming (§3.4 "Handling obfuscated
   libraries").  Renames application classes, methods, fields, and locals to
   semantically obscure names while leaving library classes and overriding
   methods of library callbacks intact (overrides must keep their names for
   dynamic dispatch, exactly as ProGuard preserves framework entry points).

   Extractocol is insensitive to application-identifier renaming because its
   demarcation points and semantic models key on library signatures; the
   evaluation verifies the same results hold on obfuscated APKs (§5). *)

module Ir = Extr_ir.Types

type mapping = {
  map_classes : (string, string) Hashtbl.t;
  map_methods : (string * string, string) Hashtbl.t;  (** (class, meth) → name *)
  map_fields : (string * string, string) Hashtbl.t;
}

let obscure_name i =
  (* a, b, ..., z, aa, ab, ... *)
  let rec go i acc =
    let c = Char.chr (Char.code 'a' + (i mod 26)) in
    let acc = String.make 1 c ^ acc in
    if i < 26 then acc else go ((i / 26) - 1) acc
  in
  go i ""

(** Method names that must survive obfuscation: constructors and framework
    callback overrides that library code invokes reflectively/virtually. *)
let preserved_method_names =
  [
    "<init>"; "onCreate"; "onResume"; "onStart"; "onClick"; "run";
    "doInBackground"; "onPostExecute"; "onResponse"; "onErrorResponse";
    "onLocationChanged"; "onMessage"; "compare";
  ]

let build_mapping (prog : Ir.program) : mapping =
  let map_classes = Hashtbl.create 64 in
  let map_methods = Hashtbl.create 256 in
  let map_fields = Hashtbl.create 64 in
  let counter = ref 0 in
  let fresh prefix =
    let name = prefix ^ obscure_name !counter in
    incr counter;
    name
  in
  List.iter
    (fun c ->
      if not c.Ir.c_library then begin
        (* Package prefix is preserved so the scoping of §5.3 (analysis
           restricted to com.kayak classes) still works on obfuscated apps:
           ProGuard keeps apps inside their package by default. *)
        let pkg =
          match String.rindex_opt c.Ir.c_name '.' with
          | Some i -> String.sub c.Ir.c_name 0 (i + 1)
          | None -> ""
        in
        Hashtbl.replace map_classes c.Ir.c_name (pkg ^ fresh "C");
        List.iter
          (fun (m : Ir.meth) ->
            if not (List.mem m.Ir.m_name preserved_method_names) then
              Hashtbl.replace map_methods (c.Ir.c_name, m.Ir.m_name) (fresh "m"))
          c.Ir.c_methods;
        List.iter
          (fun (f : Ir.field) ->
            Hashtbl.replace map_fields (c.Ir.c_name, f.Ir.f_name) (fresh "f"))
          c.Ir.c_fields
      end)
    prog.Ir.p_classes;
  { map_classes; map_methods; map_fields }

let rename_class mapping name =
  Option.value (Hashtbl.find_opt mapping.map_classes name) ~default:name

let rename_method mapping cls name =
  Option.value (Hashtbl.find_opt mapping.map_methods (cls, name)) ~default:name

let rename_field mapping cls name =
  Option.value (Hashtbl.find_opt mapping.map_fields (cls, name)) ~default:name

let rec rename_ty mapping = function
  | Ir.Obj c -> Ir.Obj (rename_class mapping c)
  | Ir.Arr t -> Ir.Arr (rename_ty mapping t)
  | (Ir.Void | Ir.Int | Ir.Bool | Ir.Str) as t -> t

let rename_var mapping (v : Ir.var) = { v with Ir.vty = rename_ty mapping v.Ir.vty }

let rename_value mapping = function
  | Ir.Local v -> Ir.Local (rename_var mapping v)
  | Ir.Const _ as c -> c

let rename_fref mapping (f : Ir.field_ref) =
  {
    Ir.fcls = rename_class mapping f.Ir.fcls;
    fname = rename_field mapping f.Ir.fcls f.Ir.fname;
    fty = rename_ty mapping f.Ir.fty;
  }

let rename_mref mapping (r : Ir.method_ref) =
  {
    r with
    Ir.mcls = rename_class mapping r.Ir.mcls;
    mname = rename_method mapping r.Ir.mcls r.Ir.mname;
    mret = rename_ty mapping r.Ir.mret;
  }

let rename_invoke mapping (i : Ir.invoke) =
  {
    i with
    Ir.iref = rename_mref mapping i.Ir.iref;
    ibase = Option.map (rename_var mapping) i.Ir.ibase;
    iargs = List.map (rename_value mapping) i.Ir.iargs;
  }

let rename_expr mapping = function
  | Ir.Val v -> Ir.Val (rename_value mapping v)
  | Ir.Binop (op, a, b) ->
      Ir.Binop (op, rename_value mapping a, rename_value mapping b)
  | Ir.New c -> Ir.New (rename_class mapping c)
  | Ir.NewArr (t, n) -> Ir.NewArr (rename_ty mapping t, rename_value mapping n)
  | Ir.IField (x, f) -> Ir.IField (rename_var mapping x, rename_fref mapping f)
  | Ir.SField f -> Ir.SField (rename_fref mapping f)
  | Ir.AElem (a, i) -> Ir.AElem (rename_var mapping a, rename_value mapping i)
  | Ir.ALen a -> Ir.ALen (rename_var mapping a)
  | Ir.Invoke i -> Ir.Invoke (rename_invoke mapping i)
  | Ir.Cast (t, v) -> Ir.Cast (rename_ty mapping t, rename_value mapping v)

let rename_lhs mapping = function
  | Ir.Lvar v -> Ir.Lvar (rename_var mapping v)
  | Ir.Lfield (x, f) -> Ir.Lfield (rename_var mapping x, rename_fref mapping f)
  | Ir.Lsfield f -> Ir.Lsfield (rename_fref mapping f)
  | Ir.Lelem (a, i) -> Ir.Lelem (rename_var mapping a, rename_value mapping i)

let rename_stmt mapping = function
  | Ir.Assign (l, e) -> Ir.Assign (rename_lhs mapping l, rename_expr mapping e)
  | Ir.InvokeStmt i -> Ir.InvokeStmt (rename_invoke mapping i)
  | Ir.If (v, l) -> Ir.If (rename_value mapping v, l)
  | (Ir.Goto _ | Ir.Lab _ | Ir.Nop) as s -> s
  | Ir.Return v -> Ir.Return (Option.map (rename_value mapping) v)

let rename_meth mapping (m : Ir.meth) =
  {
    m with
    Ir.m_cls = rename_class mapping m.Ir.m_cls;
    m_name = rename_method mapping m.Ir.m_cls m.Ir.m_name;
    m_params = List.map (rename_var mapping) m.Ir.m_params;
    m_ret = rename_ty mapping m.Ir.m_ret;
    m_body = Array.map (rename_stmt mapping) m.Ir.m_body;
  }

let rename_cls mapping (c : Ir.cls) =
  if c.Ir.c_library then c
  else
    {
      c with
      Ir.c_name = rename_class mapping c.Ir.c_name;
      c_super = Option.map (rename_class mapping) c.Ir.c_super;
      c_fields =
        List.map
          (fun (f : Ir.field) ->
            {
              f with
              Ir.f_name = rename_field mapping c.Ir.c_name f.Ir.f_name;
              f_ty = rename_ty mapping f.Ir.f_ty;
            })
          c.Ir.c_fields;
      c_methods = List.map (rename_meth mapping) c.Ir.c_methods;
    }

(** Build a renaming map covering the LIBRARY classes and their methods —
    the adversarial case of §3.4 ("when library code included in our
    semantic model is obfuscated").  Constructors keep their names (the
    VM's <init> is not renameable). *)
let build_library_mapping (prog : Ir.program) : mapping =
  let map_classes = Hashtbl.create 64 in
  let map_methods = Hashtbl.create 256 in
  let map_fields = Hashtbl.create 16 in
  let counter = ref 0 in
  let fresh prefix =
    let name = prefix ^ obscure_name !counter in
    incr counter;
    name
  in
  (* Method names used on library classes anywhere in the app. *)
  let lib_names = Hashtbl.create 16 in
  List.iter
    (fun c -> if c.Ir.c_library then Hashtbl.replace lib_names c.Ir.c_name ())
    prog.Ir.p_classes;
  List.iter
    (fun c -> if c.Ir.c_library then Hashtbl.replace map_classes c.Ir.c_name (fresh "L"))
    prog.Ir.p_classes;
  List.iter
    (fun c ->
      if not c.Ir.c_library then
        List.iter
          (fun (m : Ir.meth) ->
            Array.iter
              (fun stmt ->
                match Ir.stmt_invoke stmt with
                | Some i
                  when Hashtbl.mem lib_names i.Ir.iref.Ir.mcls
                       && i.Ir.iref.Ir.mname <> "<init>"
                       && not
                            (Hashtbl.mem map_methods
                               (i.Ir.iref.Ir.mcls, i.Ir.iref.Ir.mname)) ->
                    Hashtbl.replace map_methods
                      (i.Ir.iref.Ir.mcls, i.Ir.iref.Ir.mname)
                      (fresh "q")
                | _ -> ())
              m.Ir.m_body)
          c.Ir.c_methods)
    prog.Ir.p_classes;
  { map_classes; map_methods; map_fields }

let rename_program mapping (prog : Ir.program) ~rename_library_decls =
  {
    Ir.p_classes =
      List.map
        (fun c ->
          if c.Ir.c_library then
            if rename_library_decls then
              {
                c with
                Ir.c_name = rename_class mapping c.Ir.c_name;
                c_super = Option.map (rename_class mapping) c.Ir.c_super;
              }
            else c
          else
            (* App classes keep their own names here; only references into
               the library change. *)
            {
              c with
              Ir.c_super = Option.map (rename_class mapping) c.Ir.c_super;
              c_methods =
                List.map
                  (fun (m : Ir.meth) ->
                    {
                      m with
                      Ir.m_params = List.map (rename_var mapping) m.Ir.m_params;
                      m_ret = rename_ty mapping m.Ir.m_ret;
                      m_body = Array.map (rename_stmt mapping) m.Ir.m_body;
                    })
                  c.Ir.c_methods;
            })
        prog.Ir.p_classes;
    p_entries = prog.Ir.p_entries;
  }

(** Obfuscate the library surface an APK uses: library class names and the
    library method names the app calls are replaced throughout.  Without
    de-obfuscation, demarcation points and semantic models no longer match
    (§3.4). *)
let obfuscate_libraries (apk : Apk.t) : Apk.t * mapping =
  let prog = apk.Apk.program in
  let mapping = build_library_mapping prog in
  let program = rename_program mapping prog ~rename_library_decls:true in
  ({ apk with Apk.program }, mapping)

(** Obfuscate an APK; returns the obfuscated APK and the renaming map (the
    map exists only for ground-truth comparison in tests, mirroring how the
    paper verified identical results on ProGuard-processed apps). *)
let obfuscate (apk : Apk.t) : Apk.t * mapping =
  let prog = apk.Apk.program in
  let mapping = build_mapping prog in
  let program =
    {
      Ir.p_classes = List.map (rename_cls mapping) prog.Ir.p_classes;
      p_entries =
        List.map
          (fun (r : Ir.method_ref) ->
            {
              r with
              Ir.mcls = rename_class mapping r.Ir.mcls;
              mname = rename_method mapping r.Ir.mcls r.Ir.mname;
            })
          prog.Ir.p_entries;
    }
  in
  let manifest =
    {
      apk.Apk.manifest with
      Apk.mf_activities =
        List.map (rename_class mapping) apk.Apk.manifest.Apk.mf_activities;
    }
  in
  ({ apk with Apk.program; manifest }, mapping)
