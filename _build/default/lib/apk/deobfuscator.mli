(** Library de-obfuscation (§3.4): recover the identities of renamed
    library classes and methods by comparing the program's usage patterns
    against a catalog of the known API surface — "the class and method that
    has the most similar signature patterns".

    Matching signals are name-free: per-class multisets of (arity,
    argument shapes, return shape, static/instance) usages, the concrete
    classes calls return (dataflow linkage), and superclass edges among
    library classes.  Assignment is an iterated greedy search whose
    relational bonuses disambiguate successive rounds; superclass edges
    then pull in classes with no direct usages (interfaces). *)

module Ir = Extr_ir.Types

(** Name-free shape of a type. *)
type shape = Svoid | Sint | Sbool | Sstr | Sobj | Sarr

(** Observed class relationship of an object argument. *)
type arg_obs =
  | Obs_app_subclass of string  (** app class extending this obf lib class *)
  | Obs_lib of string  (** direct instance of this obf lib class *)
  | Obs_other

(** One observed use of a library method (exposed for diagnostics). *)
type usage = {
  u_name : string;
  u_static : bool;
  u_args : shape list;
  u_arg_obs : arg_obs list;
  u_ret : shape;
  u_ret_cls : string option;
}

val usage_profiles : Ir.program -> (string, usage list) Hashtbl.t
(** Per library class, the usages the application makes of it. *)

type mapping = {
  dm_classes : (string * string) list;  (** obfuscated class → known class *)
  dm_methods : ((string * string) * string) list;
      (** (obfuscated class, obfuscated method) → known method *)
}

val recover : Ir.program -> mapping
(** Infer the map from usage profiles.  Residual ambiguities (e.g. HttpPut
    vs HttpPost when both only construct) fall to the first candidate; the
    paper resolves those by inspecting decompiled code. *)

val apply : mapping -> Ir.program -> Ir.program
(** Rewrite the program with the recovered identifiers so demarcation
    points and semantic models match again. *)

val deobfuscate : Apk.t -> Apk.t * mapping
(** Recover and apply in one step. *)
