(** Simulated origin servers, derived from the same app specs that drive
    code generation.  Handlers match requests against endpoint URI
    templates, enforce the access-control rules the paper observed
    (Kayak's User-Agent gating), and produce responses carrying both the
    fields the app reads and the ones it ignores (§5.1). *)

module Http = Extr_httpmodel.Http
module Strsig = Extr_siglang.Strsig
module Spec = Extr_corpus.Spec

val concrete_vsrc : Spec.app -> Spec.vsrc -> string
(** Deterministic concrete value of a request source (what the runtime
    sends for user input / counters / gps / tokens). *)

val token_value : string -> string list -> string
(** The token issued for a response leaf; matches [concrete_vsrc] on the
    corresponding [Sresp] so dependency chains round-trip. *)

val concrete_uri : Spec.app -> Spec.endpoint -> string
(** The endpoint's URL with all variables instantiated — used for
    follow-link values embedded in responses. *)

val uri_signature : Spec.app -> Spec.endpoint -> Strsig.t
(** The endpoint's URI template as a string signature (spec-level ground
    truth and request matching). *)

val request_matches_endpoint : Spec.app -> Spec.endpoint -> Http.request -> bool

val response_body : Spec.app -> Spec.endpoint -> Http.body
(** Generate the endpoint's response body from its spec, including fields
    the app never parses. *)

val make : Spec.app -> Http.request -> Http.response
(** Build the handler.  Responses carry an [x-endpoint] header naming the
    matched endpoint (evaluation bookkeeping); unmatched requests get 404,
    access-control failures 403. *)
