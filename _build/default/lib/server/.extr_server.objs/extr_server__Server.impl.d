lib/server/server.ml: Buffer Char Extr_corpus Extr_httpmodel Extr_siglang List Option Printf String
