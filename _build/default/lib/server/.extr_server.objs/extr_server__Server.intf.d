lib/server/server.mli: Extr_corpus Extr_httpmodel Extr_siglang
