(** Intra-procedural control-flow graphs over Limple method bodies: basic
    blocks, successor/predecessor edges, dominators, natural loops and a
    loop-aware topological order.  The signature builder (§3.2) processes
    basic blocks in topological order and needs to know which confluence
    points are loop headers or latches. *)

module Ir = Extr_ir.Types

type block = {
  b_id : int;
  b_first : int;  (** index of the first statement *)
  b_last : int;  (** index of the last statement (inclusive) *)
}

type t = {
  meth : Ir.meth;
  blocks : block array;
  succs : int list array;
  preds : int list array;
  block_of_stmt : int array;  (** statement index → block id *)
}

val build : Ir.meth -> t
val n_blocks : t -> int

val block_stmts : t -> int -> int list
(** Statement indices of a block, in order. *)

val reachable : t -> bool array
(** Blocks reachable from the entry. *)

val dominators : t -> int list array
(** [doms.(b)] is the set of blocks dominating [b] (iterative data-flow). *)

type loop_info = {
  headers : int list;  (** loop header blocks *)
  latches : int list;  (** blocks with a back edge to a header *)
  back_edges : (int * int) list;  (** (latch, header) *)
}

val loops : t -> loop_info
(** Natural-loop detection: a back edge is an edge [u → v] where [v]
    dominates [u].  §3.2 distinguishes loop-header confluences (rep) from
    plain ones (∨). *)

val topological_order : t -> int list
(** Topological order of reachable blocks ignoring back edges — the order
    in which the signature builder visits blocks. *)

val forward_preds : t -> int -> int list
(** Predecessors along non-back edges: the flows merged at a confluence. *)

(** {1 Statement-level flow (used by the taint engines)} *)

val stmt_successors : Ir.meth -> int list array
val stmt_predecessors : Ir.meth -> int list array
val return_indices : Ir.meth -> int list
