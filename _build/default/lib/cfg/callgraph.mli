(** Call graph over application methods, built with class-hierarchy
    analysis plus pluggable implicit-callback resolution.  Implicit call
    flows through thread/HTTP libraries (AsyncTask, Volley — §3.4) are
    injected by the semantics layer through the resolver hook. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog

type callsite = {
  cs_stmt : Ir.stmt_id;
  cs_invoke : Ir.invoke;
  cs_callees : Ir.method_id list;  (** resolved application-method targets *)
  cs_implicit : bool;  (** true when the edge comes from a callback model *)
}

type t

type callback_resolver = Prog.t -> Ir.invoke -> Ir.method_id list
(** [resolver prog invoke] returns the application methods a library call
    will eventually invoke (e.g. [task.execute()] → [doInBackground]). *)

val no_callbacks : callback_resolver

val build : ?callback_resolver:callback_resolver -> Prog.t -> t

val callsites : t -> Ir.method_id -> callsite list
(** Call sites inside a method. *)

val callsite_at : t -> Ir.stmt_id -> callsite list
(** Call-site records anchored at one statement (possibly one explicit and
    one implicit). *)

val callers : t -> Ir.method_id -> Ir.stmt_id list
(** Statements that may call the given method. *)

val reachable_from : t -> Ir.method_id list -> Ir.Method_set.t
(** Application methods transitively reachable from the entries, following
    both explicit and implicit edges. *)
