lib/cfg/callgraph.ml: Array Extr_ir List Option
