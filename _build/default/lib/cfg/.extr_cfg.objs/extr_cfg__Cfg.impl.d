lib/cfg/cfg.ml: Array Extr_ir Fun Hashtbl List
