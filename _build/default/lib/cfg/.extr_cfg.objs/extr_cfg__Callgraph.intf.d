lib/cfg/callgraph.mli: Extr_ir
