lib/cfg/cfg.mli: Extr_ir
