(* Call graph over application methods, built with class-hierarchy analysis
   plus pluggable implicit-callback resolution.  Implicit call flows through
   thread/HTTP libraries (AsyncTask, Volley, Retrofit — §3.4) are injected
   by the semantics layer through [callback_resolver], mirroring how the
   paper adds EDGEMINER-style callback edges that FlowDroid misses. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog

type callsite = {
  cs_stmt : Ir.stmt_id;
  cs_invoke : Ir.invoke;
  cs_callees : Ir.method_id list;  (** resolved application-method targets *)
  cs_implicit : bool;  (** true when the edge comes from a callback model *)
}

type t = {
  prog : Prog.t;
  sites_by_caller : callsite list Ir.Method_map.t;
  callers_of : Ir.stmt_id list Ir.Method_map.t;  (** callee → call sites *)
}

(** [callback_resolver prog invoke] returns the application methods that
    the library call [invoke] will eventually invoke (e.g. [task.execute()]
    → [C.doInBackground] and [C.onPostExecute]). *)
type callback_resolver = Prog.t -> Ir.invoke -> Ir.method_id list

let no_callbacks : callback_resolver = fun _ _ -> []

let build ?(callback_resolver = no_callbacks) (prog : Prog.t) : t =
  let sites_by_caller = ref Ir.Method_map.empty in
  let callers_of = ref Ir.Method_map.empty in
  let add_caller callee sid =
    callers_of :=
      Ir.Method_map.update callee
        (function None -> Some [ sid ] | Some l -> Some (sid :: l))
        !callers_of
  in
  List.iter
    (fun (m : Ir.meth) ->
      let mid = Ir.method_id_of_meth m in
      let sites = ref [] in
      Array.iteri
        (fun idx stmt ->
          match Ir.stmt_invoke stmt with
          | None -> ()
          | Some invoke ->
              let sid = { Ir.sid_meth = mid; sid_idx = idx } in
              let direct =
                Prog.callees prog invoke |> List.map Ir.method_id_of_meth
              in
              let implicit = callback_resolver prog invoke in
              (* Keep only callbacks that exist as application methods. *)
              let implicit =
                List.filter
                  (fun id ->
                    match Prog.find_method prog id with
                    | Some _ -> not (List.mem id direct)
                    | None -> false)
                  implicit
              in
              if direct <> [] then begin
                sites :=
                  { cs_stmt = sid; cs_invoke = invoke; cs_callees = direct; cs_implicit = false }
                  :: !sites;
                List.iter (fun c -> add_caller c sid) direct
              end;
              if implicit <> [] then begin
                sites :=
                  { cs_stmt = sid; cs_invoke = invoke; cs_callees = implicit; cs_implicit = true }
                  :: !sites;
                List.iter (fun c -> add_caller c sid) implicit
              end)
        m.Ir.m_body;
      sites_by_caller := Ir.Method_map.add mid (List.rev !sites) !sites_by_caller)
    (Prog.app_methods prog);
  { prog; sites_by_caller = !sites_by_caller; callers_of = !callers_of }

let callsites t mid =
  Option.value (Ir.Method_map.find_opt mid t.sites_by_caller) ~default:[]

let callsite_at t (sid : Ir.stmt_id) =
  callsites t sid.Ir.sid_meth
  |> List.filter (fun cs -> cs.cs_stmt.Ir.sid_idx = sid.Ir.sid_idx)

let callers t callee =
  Option.value (Ir.Method_map.find_opt callee t.callers_of) ~default:[]

(** All application methods transitively reachable from the entry points,
    following both explicit and implicit edges. *)
let reachable_from t (entries : Ir.method_id list) =
  let seen = ref Ir.Method_set.empty in
  let rec visit mid =
    if not (Ir.Method_set.mem mid !seen) then begin
      seen := Ir.Method_set.add mid !seen;
      List.iter
        (fun cs -> List.iter visit cs.cs_callees)
        (callsites t mid)
    end
  in
  List.iter visit entries;
  !seen
