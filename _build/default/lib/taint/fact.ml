(* Taint facts: the data-flow abstraction tracked by both propagation
   directions.  Locals are method-scoped access paths of depth ≤ 1 (field
   sensitivity as in FlowDroid's access paths); instance fields additionally
   get a field-based global abstraction so heap flows across asynchronous
   boundaries are representable; SQLite tables are pseudo-stores so
   database-mediated dependencies (TED case study) can be tracked. *)

module Ir = Extr_ir.Types

type t =
  | Flocal of Ir.method_id * string * string list
      (** local access path: method, variable name, field chain (≤1) *)
  | Ffield of string * string  (** any-receiver instance field: class, field *)
  | Fstatic of string * string  (** static field *)
  | Fdb of string  (** SQLite table pseudo-store *)

let compare = Stdlib.compare

let pp fmt = function
  | Flocal (m, v, []) -> Format.fprintf fmt "%a:%s" Ir.Method_id.pp m v
  | Flocal (m, v, fs) ->
      Format.fprintf fmt "%a:%s.%s" Ir.Method_id.pp m v (String.concat "." fs)
  | Ffield (c, f) -> Format.fprintf fmt "<%s:%s>" c f
  | Fstatic (c, f) -> Format.fprintf fmt "<static %s:%s>" c f
  | Fdb t -> Format.fprintf fmt "<db:%s>" t

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let local mid v = Flocal (mid, v.Ir.vname, [])
let local_path mid v fname = Flocal (mid, v.Ir.vname, [ fname ])

(** Is the plain local [v] (whole object) tainted in [s]? *)
let local_tainted s mid (v : Ir.var) = Set.mem (local mid v) s

(** Is any access path rooted at local [v] tainted (the object itself or
    one of its fields)? *)
let local_or_path_tainted s mid (v : Ir.var) =
  Set.exists
    (function
      | Flocal (m, name, _) -> Ir.Method_id.equal m mid && name = v.Ir.vname
      | Ffield _ | Fstatic _ | Fdb _ -> false)
    s

(** Is the value tainted (constants never are)? *)
let value_tainted s mid = function
  | Ir.Const _ -> false
  | Ir.Local v -> local_tainted s mid v

(** All facts rooted at local [v], for kill sets. *)
let kill_local s mid (v : Ir.var) =
  Set.filter
    (function
      | Flocal (m, name, _) -> not (Ir.Method_id.equal m mid && name = v.Ir.vname)
      | Ffield _ | Fstatic _ | Fdb _ -> true)
    s

(** Instance-field facts present in a set (used by the async heuristic to
    find heap objects that carry request parts). *)
let field_facts s =
  Set.fold
    (fun f acc ->
      match f with
      | Ffield (c, n) -> (c, n) :: acc
      | Fstatic _ | Flocal _ | Fdb _ -> acc)
    s []
