lib/taint/forward.mli: Extr_cfg Extr_ir Fact
