lib/taint/forward.ml: Array Extr_cfg Extr_ir Extr_semantics Fact Fun List Option Queue
