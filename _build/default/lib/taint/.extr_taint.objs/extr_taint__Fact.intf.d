lib/taint/fact.mli: Extr_ir Format Set
