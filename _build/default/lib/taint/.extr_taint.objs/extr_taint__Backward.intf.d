lib/taint/backward.mli: Extr_cfg Extr_ir Fact
