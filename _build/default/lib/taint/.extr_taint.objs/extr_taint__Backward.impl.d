lib/taint/backward.ml: Array Extr_cfg Extr_ir Extr_semantics Fact List Option Queue
