lib/taint/fact.ml: Extr_ir Format Set Stdlib String
