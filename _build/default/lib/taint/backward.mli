(** Backward taint propagation (§3.1): control-flow edges are flipped and
    the tainting rules inverted — a tainted left-hand side taints the
    right-hand side, and the taint information of callee arguments
    propagates to caller arguments.  Starting from the request object at a
    demarcation point, this computes the backward (request) slice. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph

type t

val create : Prog.t -> Callgraph.t -> t

val inject_at : t -> Ir.stmt_id -> Fact.t list -> unit
(** Mark facts as relevant at (just after) a statement — the demarcation
    point's request argument, or a heap-setter site added by the
    asynchronous-event heuristic. *)

val inject_at_returns : t -> Ir.method_id -> Fact.t list -> unit
(** Inject at every return statement (the reverse-flow entries). *)

val run : t -> unit
(** Propagate to a fixed point (bounded by an internal step budget). *)

val touched_stmts : t -> Ir.Stmt_set.t
(** Statements contributing to the relevant values — the slice. *)

val all_facts : t -> Fact.Set.t
(** Union of every fact seen anywhere, including globals that reached
    method entries — the heap carriers the §3.4 heuristic restarts from. *)

val facts_at : t -> Ir.stmt_id -> Fact.Set.t
