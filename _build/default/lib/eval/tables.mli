(** Renderers for every table and figure of the paper's evaluation,
    printing measured values next to the paper's reported ones.

    Absolute equality is not expected everywhere (the substrate is
    synthetic); the shape — who covers more, by roughly what factor — is
    the reproduction target (see EXPERIMENTS.md). *)

module Report = Extr_extractocol.Report

val render_table1 : Format.formatter -> Eval.app_eval list -> unit
(** Per-app unique request signatures: measured Extractocol / manual-fuzz
    / auto-fuzz triples per HTTP method next to the paper's, plus
    request/response pairs and grand totals. *)

val render_fig6 : Format.formatter -> Eval.app_eval list -> unit
(** Unique signature totals (URI, request body/query, response body) for
    the open- and closed-source groups against each comparator series. *)

val render_fig7 : Format.formatter -> Eval.app_eval list -> unit
(** Constant-keyword totals for the same groups and series. *)

val render_table2 : Format.formatter -> Eval.app_eval list -> unit
(** Matched byte count % — how much of each concrete message the
    signatures attribute to keywords (R_k), values (R_v) or nothing
    (R_n). *)

val render_transactions : Format.formatter -> string -> Report.t -> unit
(** Generic case-study dump (Tables 3 and 4): titled transaction report
    with pairings and dependencies. *)

val render_table5 : Format.formatter -> Report.t -> unit
(** Kayak API categories: group transactions by URI prefix (longer
    prefixes claim transactions first so ["/k"] does not swallow
    ["/k/authajax"]) and check the app-specific User-Agent header. *)

(** Substring helpers over regex-ish signature text (avoiding a [Str]
    dependency). *)
module Str_replace : sig
  val global : string -> string
  (** The fragment with [/] separators removed — the form used to match
      against flattened signature text. *)

  val contains : string -> string -> bool
  (** Does the haystack contain the needle once backslashes and slashes
      are stripped from the haystack? *)
end

val render_table6 : Format.formatter -> Report.t -> unit
(** The three selected Kayak request signatures (session, flight search,
    poll) in the paper's Table 6 notation. *)
