(* §5.3 API replay: generate concrete HTTPS requests from the extracted
   Kayak signatures (the paper's 73-line Python script) and verify that
   flight fares can be retrieved: a /k/authajax session, then
   /flight/start, then /flight/poll — including the app-specific
   User-Agent header the server uses for access control. *)

module Http = Extr_httpmodel.Http
module Uri = Extr_httpmodel.Uri
module Json = Extr_httpmodel.Json
module Strsig = Extr_siglang.Strsig
module Msgsig = Extr_siglang.Msgsig
module Report = Extr_extractocol.Report
module Spec = Extr_corpus.Spec
module Server = Extr_server.Server

(** Instantiate a string signature with concrete placeholder values (and
    substitutions for named query keys). *)
let rec concretize ?(subst = []) (sg : Strsig.t) : string =
  match sg with
  | Strsig.Lit s -> s
  | Strsig.Unknown Strsig.Hnum -> "7"
  | Strsig.Unknown Strsig.Hbool -> "true"
  | Strsig.Unknown Strsig.Hany -> "x"
  | Strsig.Concat parts ->
      (* Substitute query values by their preceding "k=" literal. *)
      let buf = Buffer.create 64 in
      let pending_key = ref None in
      List.iter
        (fun p ->
          (match p with
          | Strsig.Lit s ->
              (* Remember the trailing key of "...&key=" literals. *)
              let key =
                match String.rindex_opt s '=' with
                | Some i when i = String.length s - 1 -> (
                    let before = String.sub s 0 i in
                    match
                      (String.rindex_opt before '&', String.rindex_opt before '?')
                    with
                    | Some j, Some k ->
                        let j = max j k in
                        Some (String.sub before (j + 1) (i - j - 1))
                    | Some j, None | None, Some j ->
                        Some (String.sub before (j + 1) (i - j - 1))
                    | None, None -> Some before)
                | _ -> None
              in
              pending_key := key
          | _ -> ());
          match p with
          | Strsig.Lit s -> Buffer.add_string buf s
          | other -> (
              match !pending_key with
              | Some k when List.mem_assoc k subst ->
                  Buffer.add_string buf (List.assoc k subst)
              | _ -> Buffer.add_string buf (concretize ~subst other)))
        parts;
      Buffer.contents buf
  | Strsig.Alt (b :: _) -> concretize ~subst b
  | Strsig.Alt [] -> ""
  | Strsig.Rep _ -> ""

(** Build a concrete request from an extracted request signature. *)
let request_of_sig ?(subst = []) (rs : Msgsig.request_sig) : Http.request option =
  let uri_s = concretize ~subst rs.Msgsig.rs_uri in
  match Uri.of_string_opt uri_s with
  | None -> None
  | Some uri ->
      let headers =
        List.map (fun (k, v) -> (k, concretize ~subst v)) rs.Msgsig.rs_headers
      in
      let body =
        match rs.Msgsig.rs_body with
        | Msgsig.Bnone | Msgsig.Bopaque -> Http.No_body
        | Msgsig.Bquery pairs ->
            Http.Query
              (List.map
                 (fun (k, v) ->
                   ( k,
                     match List.assoc_opt k subst with
                     | Some s -> s
                     | None -> concretize ~subst v ))
                 pairs)
        | Msgsig.Bjson _ -> Http.Json (Json.Obj [])
        | Msgsig.Bxml _ -> Http.Text "<x/>"
        | Msgsig.Btext sg -> Http.Text (concretize ~subst sg)
      in
      Some (Http.request ~headers ~body rs.Msgsig.rs_meth uri)

let find_tx (report : Report.t) fragment : Report.transaction option =
  List.find_opt
    (fun tr ->
      Tables.Str_replace.contains
        (Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri)
        fragment)
    report.Report.rp_transactions

(** The full §5.3 replay: session, search start, poll.  Returns true when
    fares come back. *)
let flight_search (app : Spec.app) (report : Report.t) : bool =
  let net = Server.make app in
  let send req = net req in
  let json_of (resp : Http.response) =
    match resp.Http.resp_body with Http.Json j -> Some j | _ -> None
  in
  let ( let* ) = Option.bind in
  let result =
    let* auth_tx = find_tx report "kauthajax" in
    let* auth_req = request_of_sig auth_tx.Report.tr_request in
    let auth_resp = send auth_req in
    let* auth_json = json_of auth_resp in
    let* sid = Json.member "sid" auth_json in
    let sid = match sid with Json.Str s -> s | v -> Json.to_string v in
    let* start_tx = find_tx report "flightstart" in
    let* start_req =
      request_of_sig ~subst:[ ("_sid_", sid) ] start_tx.Report.tr_request
    in
    let start_resp = send start_req in
    let* start_json = json_of start_resp in
    let* searchid = Json.member "searchid" start_json in
    let searchid =
      match searchid with Json.Str s -> s | v -> Json.to_string v
    in
    let* poll_tx = find_tx report "flightpoll" in
    let* poll_req =
      request_of_sig ~subst:[ ("searchid", searchid) ] poll_tx.Report.tr_request
    in
    let poll_resp = send poll_req in
    let* poll_json = json_of poll_resp in
    let* fares = Json.member "fares" poll_json in
    match fares with Json.List (_ :: _) -> Some true | _ -> Some false
  in
  Option.value result ~default:false
