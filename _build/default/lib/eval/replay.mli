(** §5.3 API replay: generate concrete HTTPS requests from extracted
    signatures (the paper's 73-line Python script) and drive the origin
    server with them — no app code involved. *)

module Http = Extr_httpmodel.Http
module Strsig = Extr_siglang.Strsig
module Msgsig = Extr_siglang.Msgsig
module Report = Extr_extractocol.Report
module Spec = Extr_corpus.Spec

val concretize : ?subst:(string * string) list -> Strsig.t -> string
(** Instantiate a string signature with concrete placeholder values:
    [Unknown Hnum] becomes ["7"], [Hbool] ["true"], [Hany] ["x"]; the
    first branch of an alternation is taken; repetitions collapse to the
    empty string.  [subst] overrides the value of query parameters by
    their key (recognized from the preceding ["...key="] literal). *)

val request_of_sig :
  ?subst:(string * string) list -> Msgsig.request_sig -> Http.request option
(** Build a concrete request from an extracted request signature; [None]
    when the concretized URI does not parse. *)

val find_tx : Report.t -> string -> Report.transaction option
(** First transaction whose request-URI regex contains the fragment
    (keyword matching as in Table 6). *)

val flight_search : Spec.app -> Report.t -> bool
(** The full §5.3 replay against the app's origin server: a [/k/authajax]
    session request, then [/flight/start], then [/flight/poll], threading
    the live [sid] and [searchid] values between them.  True when fares
    come back. *)
