(* Renderers for every table and figure of the paper's evaluation,
   printing measured values next to the paper's reported ones.  Absolute
   equality is not expected everywhere (the substrate is synthetic); the
   shape — who covers more, by roughly what factor — is the reproduction
   target (see EXPERIMENTS.md). *)

module Http = Extr_httpmodel.Http
module Spec = Extr_corpus.Spec
module Synth = Extr_corpus.Synth
module Report = Extr_extractocol.Report
module Txn = Extr_extractocol.Txn
module Msgsig = Extr_siglang.Msgsig
module Strsig = Extr_siglang.Strsig

(* ------------------------------------------------------------------ *)
(* Table 1                                                            *)
(* ------------------------------------------------------------------ *)

let pp_triple fmt (a, b, c) = Fmt.pf fmt "%3d/%3d/%3d" a b c

(** Per-app coverage row: measured Extractocol / manual / auto counts per
    method next to the paper's triples. *)
let render_table1 fmt (evals : Eval.app_eval list) =
  Fmt.pf fmt
    "Table 1 — unique request signatures (measured E/M/A  vs  paper E/M/A)@\n";
  Fmt.pf fmt "%-24s %-13s %-13s %-13s %-13s %-13s %-13s %5s %5s@\n" "app"
    "GET meas" "GET paper" "POST meas" "POST paper" "PUT meas" "DEL meas"
    "pairs" "paper";
  List.iter
    (fun (ae : Eval.app_eval) ->
      let c = Eval.coverage ae in
      let sg, sp, su, sd = c.Eval.cr_static in
      let mg, mp, mu, md = c.Eval.cr_manual in
      let ag, ap, au, ad = c.Eval.cr_auto in
      let paper_get, paper_post, paper_pairs =
        match ae.Eval.ae_row with
        | Some r -> (r.Synth.t_get, r.Synth.t_post, r.Synth.t_pairs)
        | None -> ((0, 0, 0), (0, 0, 0), 0)
      in
      Fmt.pf fmt "%-24s %a %a %a %a %a %a %5d %5d@\n" c.Eval.cr_app pp_triple
        (sg, mg, ag) pp_triple paper_get pp_triple (sp, mp, ap) pp_triple
        paper_post pp_triple (su, mu, au) pp_triple (sd, md, ad) c.Eval.cr_pairs
        paper_pairs)
    evals;
  let total f =
    List.fold_left
      (fun acc ae ->
        let c = Eval.coverage ae in
        let a, b, cc, d = f c in
        acc + a + b + cc + d)
      0 evals
  in
  Fmt.pf fmt
    "totals: extractocol %d requests, manual fuzzing %d, automatic fuzzing %d@\n"
    (total (fun c -> c.Eval.cr_static))
    (total (fun c -> c.Eval.cr_manual))
    (total (fun c -> c.Eval.cr_auto))

(* ------------------------------------------------------------------ *)
(* Figure 6                                                           *)
(* ------------------------------------------------------------------ *)

(** Paper's Figure 6 values (digitized): per series, (URI, request
    body/query, response body) signature totals. *)
let fig6_paper_open = [ ("extractocol", (98, 92, 48)); ("manual", (95, 91, 48)); ("source", (98, 92, 48)) ]

let fig6_paper_closed =
  [ ("extractocol", (1058, 402, 586)); ("manual", (732, 240, 314)); ("auto", (216, 141, 222)) ]

let sum_counts f evals =
  List.fold_left
    (fun (u, r, p) ae ->
      let c = f ae in
      (u + c.Eval.sc_uri, r + c.Eval.sc_request, p + c.Eval.sc_response))
    (0, 0, 0) evals

let render_fig6 fmt (evals : Eval.app_eval list) =
  let opens = List.filter (fun ae -> not ae.Eval.ae_app.Spec.a_closed) evals in
  let closed = List.filter (fun ae -> ae.Eval.ae_app.Spec.a_closed) evals in
  let line fmt' name (u, r, p) paper =
    let pu, pr, pp_ = match paper with Some (a, b, c) -> (a, b, c) | None -> (0, 0, 0) in
    Fmt.pf fmt' "  %-12s URI %4d (paper %4d)  req-body %4d (paper %4d)  resp-body %4d (paper %4d)@\n"
      name u pu r pr p pp_
  in
  Fmt.pf fmt "Figure 6 — unique signature totals@\n";
  Fmt.pf fmt " open-source apps:@\n";
  line fmt "extractocol" (sum_counts Eval.static_sig_counts opens)
    (List.assoc_opt "extractocol" fig6_paper_open);
  line fmt "manual" (sum_counts (fun ae -> Eval.trace_sig_counts ae ae.Eval.ae_manual) opens)
    (List.assoc_opt "manual" fig6_paper_open);
  line fmt "source" (sum_counts Eval.source_sig_counts opens)
    (List.assoc_opt "source" fig6_paper_open);
  Fmt.pf fmt " closed-source apps:@\n";
  line fmt "extractocol" (sum_counts Eval.static_sig_counts closed)
    (List.assoc_opt "extractocol" fig6_paper_closed);
  line fmt "manual" (sum_counts (fun ae -> Eval.trace_sig_counts ae ae.Eval.ae_manual) closed)
    (List.assoc_opt "manual" fig6_paper_closed);
  line fmt "auto" (sum_counts (fun ae -> Eval.trace_sig_counts ae ae.Eval.ae_auto) closed)
    (List.assoc_opt "auto" fig6_paper_closed)

(* ------------------------------------------------------------------ *)
(* Figure 7                                                           *)
(* ------------------------------------------------------------------ *)

(** Paper's Figure 7 values: (request body/query keywords, response body
    keywords) per series. *)
let fig7_paper_open = [ ("extractocol", (144, 372)); ("manual", (145, 616)); ("source", (145, 372)) ]

let fig7_paper_closed =
  [ ("extractocol", (7793, 14120)); ("manual", (3507, 13554)); ("auto", (505, 2912)) ]

let sum_keywords f evals =
  List.fold_left
    (fun (r, p) ae ->
      let c = f ae in
      (r + c.Eval.kc_request, p + c.Eval.kc_response))
    (0, 0) evals

let render_fig7 fmt (evals : Eval.app_eval list) =
  let opens = List.filter (fun ae -> not ae.Eval.ae_app.Spec.a_closed) evals in
  let closed = List.filter (fun ae -> ae.Eval.ae_app.Spec.a_closed) evals in
  let line fmt' name (r, p) paper =
    let pr, pp_ = match paper with Some (a, b) -> (a, b) | None -> (0, 0) in
    Fmt.pf fmt' "  %-12s request keywords %5d (paper %5d)   response keywords %5d (paper %5d)@\n"
      name r pr p pp_
  in
  Fmt.pf fmt "Figure 7 — constant keyword totals@\n";
  Fmt.pf fmt " open-source apps:@\n";
  line fmt "extractocol" (sum_keywords Eval.static_keywords opens)
    (List.assoc_opt "extractocol" fig7_paper_open);
  line fmt "manual" (sum_keywords (fun ae -> Eval.trace_keywords ae.Eval.ae_manual) opens)
    (List.assoc_opt "manual" fig7_paper_open);
  line fmt "source" (sum_keywords Eval.source_keywords opens)
    (List.assoc_opt "source" fig7_paper_open);
  Fmt.pf fmt " closed-source apps:@\n";
  line fmt "extractocol" (sum_keywords Eval.static_keywords closed)
    (List.assoc_opt "extractocol" fig7_paper_closed);
  line fmt "manual" (sum_keywords (fun ae -> Eval.trace_keywords ae.Eval.ae_manual) closed)
    (List.assoc_opt "manual" fig7_paper_closed);
  line fmt "auto" (sum_keywords (fun ae -> Eval.trace_keywords ae.Eval.ae_auto) closed)
    (List.assoc_opt "auto" fig7_paper_closed)

(* ------------------------------------------------------------------ *)
(* Table 2                                                            *)
(* ------------------------------------------------------------------ *)

(** Paper Table 2: matched byte count % (R_k / R_v / R_n). *)
let table2_paper =
  [
    ("open request body/query", (47., 52., 1.));
    ("open response body", (7., 48., 45.));
    ("closed request body/query", (48., 31., 21.));
    ("closed response body", (16., 35., 49.));
  ]

let render_table2 fmt (evals : Eval.app_eval list) =
  let opens = List.filter (fun ae -> not ae.Eval.ae_app.Spec.a_closed) evals in
  let closed = List.filter (fun ae -> ae.Eval.ae_app.Spec.a_closed) evals in
  let accumulate group =
    List.fold_left
      (fun (req, resp) ae ->
        let r, p = Eval.byte_accounting ae ae.Eval.ae_full in
        ( Eval.add_account req (r.Eval.ba_k, r.Eval.ba_v, r.Eval.ba_n),
          Eval.add_account resp (p.Eval.ba_k, p.Eval.ba_v, p.Eval.ba_n) ))
      (Eval.zero_account, Eval.zero_account)
      group
  in
  let line fmt' name acc paper_key =
    let k, v, n = Eval.account_percentages acc in
    let pk, pv, pn =
      Option.value (List.assoc_opt paper_key table2_paper) ~default:(0., 0., 0.)
    in
    Fmt.pf fmt'
      "  %-28s Rk %4.0f%% Rv %4.0f%% Rn %4.0f%%   (paper %2.0f/%2.0f/%2.0f)@\n"
      name k v n pk pv pn
  in
  Fmt.pf fmt "Table 2 — matched byte count %% on actual traffic@\n";
  let oreq, oresp = accumulate opens in
  let creq, cresp = accumulate closed in
  line fmt "open request body/query" oreq "open request body/query";
  line fmt "open response body" oresp "open response body";
  line fmt "closed request body/query" creq "closed request body/query";
  line fmt "closed response body" cresp "closed response body"

(* ------------------------------------------------------------------ *)
(* Case-study tables (3, 4, 5, 6)                                      *)
(* ------------------------------------------------------------------ *)

let render_transactions fmt title (report : Report.t) =
  Fmt.pf fmt "%s@\n%a@\n" title Report.pp report

(** Table 5: group Kayak transactions by URI prefix category.  Longer
    prefixes claim transactions first so "/k" does not swallow
    "/k/authajax". *)
let render_table5 fmt (report : Report.t) =
  Fmt.pf fmt "Table 5 — Kayak API categories (measured vs paper #APIs)@\n";
  let txs = report.Report.rp_transactions in
  let has_prefix tr prefix meth =
    Http.meth_to_string tr.Report.tr_request.Msgsig.rs_meth = meth
    &&
    let lits =
      String.concat "" (Strsig.literals tr.Report.tr_request.Msgsig.rs_uri)
    in
    let host = "https://www.kayak.com" in
    String.length lits >= String.length host + String.length prefix
    && String.sub lits (String.length host) (String.length prefix) = prefix
  in
  let claimed = Hashtbl.create 16 in
  let by_length =
    List.sort
      (fun (_, _, p1, _) (_, _, p2, _) ->
        compare (String.length p2) (String.length p1))
      Extr_corpus.Case_studies.kayak_categories
  in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (cat, meth, prefix, _) ->
      let n =
        List.length
          (List.filter
             (fun tr ->
               (not (Hashtbl.mem claimed tr.Report.tr_id))
               && has_prefix tr prefix meth
               &&
               (Hashtbl.replace claimed tr.Report.tr_id ();
                true))
             txs)
      in
      Hashtbl.replace counts cat n)
    by_length;
  List.iter
    (fun (cat, meth, prefix, paper_count) ->
      Fmt.pf fmt "  %-16s %-5s %-24s measured %3d  paper %3d@\n" cat meth prefix
        (Option.value (Hashtbl.find_opt counts cat) ~default:0)
        paper_count)
    Extr_corpus.Case_studies.kayak_categories;
  let ua =
    List.exists
      (fun tr ->
        List.exists
          (fun (k, v) ->
            k = "User-Agent" && Strsig.to_regex v = "kayakandroidphone/8\\.1")
          tr.Report.tr_request.Msgsig.rs_headers)
      txs
  in
  Fmt.pf fmt "  app-specific header identified: User-Agent: kayakandroidphone/8.1 = %b@\n" ua

(* Tiny substring helpers (avoiding a Str dependency). *)
module Str_replace = struct
  let global frag = String.concat "" (String.split_on_char '/' frag)

  let contains haystack needle =
    let flat = String.concat "" (String.split_on_char '\\' haystack) in
    let flat = String.concat "" (String.split_on_char '/' flat) in
    let n = String.length needle and h = String.length flat in
    let rec go i = i + n <= h && (String.sub flat i n = needle || go (i + 1)) in
    n = 0 || go 0
end

(** Table 6: the three selected Kayak request signatures. *)
let render_table6 fmt (report : Report.t) =
  Fmt.pf fmt "Table 6 — selected Kayak request signatures@\n";
  let interesting = [ "authajax body"; "flightstart"; "flightpoll" ] in
  List.iter
    (fun tr ->
      let text = Fmt.str "%a" Msgsig.pp_request_sig tr.Report.tr_request in
      if List.exists (fun frag -> Str_replace.contains text frag) interesting
      then Fmt.pf fmt "  %s@\n" text)
    report.Report.rp_transactions

