(** Evaluation metrics (§5): coverage per method and baseline, signature
    counts, constant-keyword counts, matched-byte accounting, and
    signature validity against captured traffic. *)

module Http = Extr_httpmodel.Http
module Report = Extr_extractocol.Report
module Spec = Extr_corpus.Spec
module Corpus = Extr_corpus.Corpus

(** One fully evaluated app: the static report plus the three dynamic
    baselines' traces. *)
type app_eval = {
  ae_app : Spec.app;
  ae_report : Report.t;
  ae_auto : Http.trace;
  ae_manual : Http.trace;
  ae_full : Http.trace;
  ae_row : Extr_corpus.Synth.row option;
}

val evaluate : Corpus.entry -> app_eval
(** Static analysis under the §5.1 configuration (async heuristic off for
    open-source apps) plus the three fuzzing runs. *)

(** {1 Coverage (Table 1)} *)

val static_method_count : app_eval -> Http.meth -> int
val trace_method_count : app_eval -> Http.trace -> Http.meth -> int

val source_method_count : app_eval -> Http.meth -> int
(** Source-truth endpoints per method (the third Table-1 series for
    open-source apps; closed-source apps use the automatic-fuzzing
    trace instead). *)

type coverage_row = {
  cr_app : string;
  cr_static : int * int * int * int;  (** GET, POST, PUT, DELETE *)
  cr_manual : int * int * int * int;
  cr_auto : int * int * int * int;
  cr_pairs : int;
}

val coverage : app_eval -> coverage_row

(** {1 Signature counts (Figure 6)} *)

type sig_counts = { sc_uri : int; sc_request : int; sc_response : int }

val static_sig_counts : app_eval -> sig_counts
val trace_sig_counts : app_eval -> Http.trace -> sig_counts
val source_sig_counts : app_eval -> sig_counts

(** {1 Keyword counts (Figure 7)} *)

type keyword_counts = { kc_request : int; kc_response : int }

val static_keywords : app_eval -> keyword_counts
val trace_keywords : Http.trace -> keyword_counts
val source_keywords : app_eval -> keyword_counts

(** {1 Signature validity and byte accounting (§5.1, Table 2)} *)

val match_request : app_eval -> Http.request -> Report.transaction option

val signature_validity : app_eval -> Http.trace -> int * int
(** [(matched, total)] over trace entries from supported endpoints. *)

type byte_account = { ba_k : int; ba_v : int; ba_n : int }

val zero_account : byte_account
val add_account : byte_account -> int * int * int -> byte_account

val byte_accounting : app_eval -> Http.trace -> byte_account * byte_account
(** Request-side and response-side accumulations over a trace. *)

val account_percentages : byte_account -> float * float * float
