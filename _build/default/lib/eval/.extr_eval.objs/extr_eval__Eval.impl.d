lib/eval/eval.ml: Extr_corpus Extr_extractocol Extr_fuzz Extr_httpmodel Extr_ir Extr_siglang Fmt Lazy List
