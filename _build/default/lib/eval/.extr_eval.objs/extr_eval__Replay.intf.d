lib/eval/replay.mli: Extr_corpus Extr_extractocol Extr_httpmodel Extr_siglang
