lib/eval/tables.ml: Eval Extr_corpus Extr_extractocol Extr_httpmodel Extr_siglang Fmt Hashtbl List Option String
