lib/eval/eval.mli: Extr_corpus Extr_extractocol Extr_httpmodel
