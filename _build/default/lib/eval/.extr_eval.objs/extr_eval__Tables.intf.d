lib/eval/tables.mli: Eval Extr_extractocol Format
