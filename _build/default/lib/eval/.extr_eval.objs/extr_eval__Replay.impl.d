lib/eval/replay.ml: Buffer Extr_corpus Extr_extractocol Extr_httpmodel Extr_server Extr_siglang List Option String Tables
