(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables 1-6, Figures 1/3/5/6/7, the §5.1 timing comparison)
   and runs the ablation benches called out in DESIGN.md.  Run with no
   argument for everything, or with one of:
     table1 fig6 fig7 table2 table3 table4 table5 table6 fig3 fig5
     timing micro sweep ablate-aug ablate-async ablate-pairing
     ablate-worklist ablate-deobf
   or with --baseline FILE [--threshold X] [--json OUT] to diff a fresh
   timing measurement against a committed BENCH_pipeline.json. *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Prog = Extr_ir.Prog
module Api = Extr_semantics.Api
module Apk = Extr_apk.Apk
module Http = Extr_httpmodel.Http
module Strsig = Extr_siglang.Strsig
module Regex = Extr_siglang.Regex
module Msgsig = Extr_siglang.Msgsig
module Report = Extr_extractocol.Report
module Pipeline = Extr_extractocol.Pipeline
module Interp = Extr_extractocol.Interp
module Pairing = Extr_extractocol.Pairing
module Slicer = Extr_slicing.Slicer
module Callgraph = Extr_cfg.Callgraph
module Callbacks = Extr_semantics.Callbacks
module Corpus = Extr_corpus.Corpus
module Spec = Extr_corpus.Spec
module Case_studies = Extr_corpus.Case_studies
module Fuzz = Extr_fuzz.Fuzz
module Eval = Extr_eval.Eval
module Tables = Extr_eval.Tables
module Runner = Extr_eval.Runner
module Merge = Extr_eval.Merge
module Json = Extr_httpmodel.Json
module Span = Extr_telemetry.Span
module Metrics = Extr_telemetry.Metrics
module Profile = Extr_telemetry.Profile
module Provenance = Extr_provenance.Provenance
module Retry = Extr_resilience.Retry
module Budget = Extr_resilience.Resilience.Budget

let fmt = Fmt.stdout

(* ------------------------------------------------------------------ *)
(* Cached corpus evaluation                                           *)
(* ------------------------------------------------------------------ *)

let table1_evals : Eval.app_eval list Lazy.t =
  lazy
    (let entries = Corpus.table1 () in
     List.map
       (fun e ->
         Fmt.epr "  evaluating %s...@." e.Corpus.c_app.Spec.a_name;
         Eval.evaluate e)
       entries)

let case_analysis name : Pipeline.analysis =
  let entries = Corpus.case_studies () in
  match Corpus.find entries name with
  | None -> Fmt.failwith "case-study app %s not found" name
  | Some e ->
      let options =
        match name with
        | "Kayak (case study)" ->
            (* §5.3 scopes the analysis to com.kayak classes. *)
            { Pipeline.default_options with Pipeline.op_scope = Some "com.kayak" }
        | _ -> Pipeline.default_options
      in
      Pipeline.analyze ~options (Lazy.force e.Corpus.c_apk)

(* ------------------------------------------------------------------ *)
(* Aggregate tables                                                   *)
(* ------------------------------------------------------------------ *)

let run_table1 () = Tables.render_table1 fmt (Lazy.force table1_evals)
let run_fig6 () = Tables.render_fig6 fmt (Lazy.force table1_evals)
let run_fig7 () = Tables.render_fig7 fmt (Lazy.force table1_evals)
let run_table2 () = Tables.render_table2 fmt (Lazy.force table1_evals)

(* ------------------------------------------------------------------ *)
(* Case studies                                                       *)
(* ------------------------------------------------------------------ *)

let run_table3 () =
  let analysis = case_analysis "radio reddit" in
  Tables.render_transactions fmt
    "Table 3 — radio reddit reconstructed transactions and dependency graph"
    analysis.Pipeline.an_report

let run_table4 () =
  let analysis = case_analysis "TED (case study)" in
  Tables.render_transactions fmt
    "Table 4 — TED transactions (static vs dynamically-derived URIs, DB-mediated deps)"
    analysis.Pipeline.an_report;
  (* Figure 1: the prefetchable ad chain — the talk-ad response contains
     the URL of the next request, whose response feeds the media player. *)
  let report = analysis.Pipeline.an_report in
  let chain =
    List.exists
      (fun tr ->
        List.exists
          (fun (d : Extr_extractocol.Txn.dep) ->
            d.Extr_extractocol.Txn.dep_to_field = "uri")
          tr.Report.tr_deps
        && List.mem Msgsig.To_media_player tr.Report.tr_response.Msgsig.ps_consumers)
      report.Report.rp_transactions
  in
  Fmt.pf fmt
    "Figure 1 — prefetchable chain (response URL -> next request -> media player): %b@\n@\n"
    chain

let run_table5 () =
  let analysis = case_analysis "Kayak (case study)" in
  Tables.render_table5 fmt analysis.Pipeline.an_report;
  Fmt.pf fmt "  total transactions in scope: %d (paper: 46)@\n@\n"
    (List.length analysis.Pipeline.an_report.Report.rp_transactions)

let run_table6 () =
  let analysis = case_analysis "Kayak (case study)" in
  Tables.render_table6 fmt analysis.Pipeline.an_report;
  (* §5.3 replay: generate requests from the extracted signatures against
     the simulated kayak.com and verify fare retrieval (the paper's
     73-line Python script). *)
  let app = Case_studies.kayak in
  let ok = Extr_eval.Replay.flight_search app analysis.Pipeline.an_report in
  Fmt.pf fmt
    "  replay: authajax -> flight/start -> flight/poll retrieved fares: %b@\n@\n" ok

let run_fig3 () =
  let analysis = case_analysis "Diode" in
  let report = analysis.Pipeline.an_report in
  Fmt.pf fmt "Figure 3 — Diode network-aware slicing@\n";
  Fmt.pf fmt "  slice fraction: %.1f%% of %d statements (paper: 6.3%%)@\n"
    (100.0 *. report.Report.rp_slice_fraction)
    report.Report.rp_total_stmts;
  (* The listing request combines nine URI patterns. *)
  let listing =
    List.find_opt
      (fun tr ->
        let r = Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri in
        String.length r > 80 && tr.Report.tr_request.Msgsig.rs_meth = Http.GET)
      report.Report.rp_transactions
  in
  (match listing with
  | Some tr ->
      let regex = Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri in
      let samples =
        [
          "http://www.reddit.com/search/.json?q=ocaml&sort=top";
          "http://www.reddit.com/r/progs/hot.json?&count=25&after=t3_x1&";
          "http://www.reddit.com/frontpage.json?hot&count=25&before=t3_x2&";
        ]
      in
      Fmt.pf fmt "  listing signature (9 URI patterns): %d chars@\n"
        (String.length regex);
      List.iter
        (fun s ->
          Fmt.pf fmt "    matches %-62s %b@\n" s
            (Regex.string_matches ~pattern:regex s))
        samples
  | None -> Fmt.pf fmt "  listing transaction not found!@\n");
  Fmt.pf fmt "@\n"

let run_fig5 () =
  Fmt.pf fmt
    "Figure 5 — request/response pairing under a shared demarcation point@\n";
  let entries = Corpus.case_studies () in
  let e = Option.get (Corpus.find entries "SharedDP") in
  let apk = Lazy.force e.Corpus.c_apk in
  let analysis = Pipeline.analyze ~options:Pipeline.default_options apk in
  Fmt.pf fmt "  disjoint-context analysis: %d transactions (expected 2)@\n"
    (List.length analysis.Pipeline.an_report.Report.rp_transactions);
  List.iter
    (fun tr -> Fmt.pf fmt "    %a@\n" Msgsig.pp_request_sig tr.Report.tr_request)
    analysis.Pipeline.an_report.Report.rp_transactions;
  (* Slice-level pairing: naive = cross product, disjoint = one pair per
     divergence head. *)
  let naive = Pairing.pair_naive analysis.Pipeline.an_slices in
  Fmt.pf fmt "  naive information-flow pairing candidates: %d (cross-paired)@\n"
    (List.length naive);
  Fmt.pf fmt "  disjoint-segment pairs: %d@\n"
    (List.length analysis.Pipeline.an_pairs);
  List.iter
    (fun (p : Pairing.pair) ->
      Fmt.pf fmt
        "    head %s: request segment %d stmts, response segment %d stmts@\n"
        (Ir.Method_id.to_string p.Pairing.pr_head)
        (Ir.Stmt_set.cardinal p.Pairing.pr_request_segment)
        (Ir.Stmt_set.cardinal p.Pairing.pr_response_segment))
    analysis.Pipeline.an_pairs;
  Fmt.pf fmt "@\n"

(* ------------------------------------------------------------------ *)
(* Timing (§5.1)                                                      *)
(* ------------------------------------------------------------------ *)

(* Measure every case-study app once with the phase spans and the shared
   pipeline.phase_us histogram enabled.  Returns the per-app JSON rows
   and the fleet-level per-phase percentile object — shared between the
   timing dump and the --baseline regression diff so both sides of a
   comparison are produced by the same code path. *)
let measure_phase_timings () =
  let tracer = Span.default in
  let entries = Corpus.case_studies () in
  (* One untimed warm-up pass per app: the measured loop then sees the
     same warmed allocator/caches whether it runs inside the full
     `timing` bench or cold at the start of a --baseline diff. *)
  List.iter
    (fun (e : Corpus.entry) ->
      ignore
        (Pipeline.analyze ~options:Pipeline.default_options
           (Lazy.force e.Corpus.c_apk)))
    entries;
  (* Fleet-level percentiles ride on the pipeline.phase_us histogram the
     phase wrapper records; collect it across every app in this loop. *)
  let metrics = Extr_telemetry.Metrics.default in
  let metrics_were = Extr_telemetry.Metrics.is_enabled metrics in
  Extr_telemetry.Metrics.reset metrics;
  Extr_telemetry.Metrics.set_enabled metrics true;
  let apps =
    List.map
      (fun (e : Corpus.entry) ->
        let name = e.Corpus.c_app.Spec.a_name in
        let apk = Lazy.force e.Corpus.c_apk in
        let options =
          match name with
          | "Kayak (case study)" ->
              { Pipeline.default_options with Pipeline.op_scope = Some "com.kayak" }
          | _ -> Pipeline.default_options
        in
        (* Min of three instrumented passes per app: the phases now run
           in single-digit milliseconds, where a single-shot sample can
           jitter past any sane regression threshold — the min is the
           stable floor estimate, on both sides of a --baseline diff.
           The shared histogram keeps accumulating across all passes. *)
        let total = ref infinity in
        let phases =
          Hashtbl.create (List.length Pipeline.phase_names)
        in
        List.iter (fun p -> Hashtbl.replace phases p infinity)
          Pipeline.phase_names;
        for _ = 1 to 3 do
          let was = Span.is_enabled tracer in
          Span.reset tracer;
          Span.set_enabled tracer true;
          ignore (Pipeline.analyze ~options apk);
          Span.set_enabled tracer was;
          let span_s sname =
            match Span.find tracer sname with
            | Some sp -> Span.duration_s sp
            | None -> 0.
          in
          total := min !total (span_s "pipeline.analyze");
          List.iter
            (fun p ->
              Hashtbl.replace phases p
                (min (Hashtbl.find phases p) (span_s ("pipeline." ^ p))))
            Pipeline.phase_names
        done;
        Json.Obj
          [
            ("app", Json.Str name);
            ("total_s", Json.Float !total);
            ( "phases",
              Json.Obj
                (List.map
                   (fun p -> (p, Json.Float (Hashtbl.find phases p)))
                   Pipeline.phase_names) );
          ])
      entries
  in
  (* Per-phase latency distribution over all apps just analyzed:
     p50/p95/p99 from the shared histogram, the same estimate the
     metrics exporter annotates snapshots with. *)
  let phase_percentiles =
    let module M = Extr_telemetry.Metrics in
    let rows =
      M.snapshot metrics
      |> List.filter_map (fun (s : M.sample) ->
             if s.M.sa_name <> "pipeline.phase_us" then None
             else
               let phase =
                 Option.value ~default:"?" (List.assoc_opt "phase" s.M.sa_labels)
               in
               let pq q =
                 match M.percentile s q with
                 | Some v -> Json.Float v
                 | None -> Json.Null
               in
               Some
                 ( phase,
                   Json.Obj
                     [
                       ("count", Json.Int s.M.sa_count);
                       ("p50_us", pq 50.0);
                       ("p95_us", pq 95.0);
                       ("p99_us", pq 99.0);
                     ] ))
    in
    Json.Obj rows
  in
  Extr_telemetry.Metrics.set_enabled metrics metrics_were;
  (apps, phase_percentiles)

(* Demand-driven slicing (ROADMAP item 1): callgraph + slicing wall-clock
   per case-study app, whole-program eager construction vs the
   demand-driven method index.  Warm min-of-3 through the phase spans —
   the same measurement the per-app rows use — so the two modes differ
   only in [op_eager_callgraph]. *)
let measure_demand () =
  let tracer = Span.default in
  let entries = Corpus.case_studies () in
  let rows =
    List.map
      (fun (e : Corpus.entry) ->
        let name = e.Corpus.c_app.Spec.a_name in
        let apk = Lazy.force e.Corpus.c_apk in
        let base =
          match name with
          | "Kayak (case study)" ->
              { Pipeline.default_options with Pipeline.op_scope = Some "com.kayak" }
          | _ -> Pipeline.default_options
        in
        let measure eager =
          let options = { base with Pipeline.op_eager_callgraph = eager } in
          ignore (Pipeline.analyze ~options apk);
          let best = ref infinity in
          let last = ref None in
          for _ = 1 to 3 do
            let was = Span.is_enabled tracer in
            Span.reset tracer;
            Span.set_enabled tracer true;
            let an = Pipeline.analyze ~options apk in
            Span.set_enabled tracer was;
            last := Some an;
            let span_s sname =
              match Span.find tracer sname with
              | Some sp -> Span.duration_s sp
              | None -> 0.
            in
            best :=
              min !best
                (span_s "pipeline.callgraph" +. span_s "pipeline.slicing")
          done;
          (!best, Option.get !last)
        in
        let eager_s, _ = measure true in
        let demand_s, demand_an = measure false in
        let speedup = if demand_s > 0. then eager_s /. demand_s else 0. in
        (* The acceptance measurement: how much of the program demand
           mode never resolved (the per-app form of the
           slicer.skipped_method_ratio gauge). *)
        let total =
          List.length (Prog.app_methods demand_an.Pipeline.an_prog)
        in
        let skipped_ratio =
          if total = 0 then 0.
          else
            float_of_int
              (total - Callgraph.resolved_count demand_an.Pipeline.an_cg)
            /. float_of_int total
        in
        Fmt.pf fmt
          "  %-28s callgraph+slicing: eager %.4fs -> demand %.4fs (%.1fx, \
           %.0f%% methods skipped)@\n"
          name eager_s demand_s speedup (100. *. skipped_ratio);
        Json.Obj
          [
            ("app", Json.Str name);
            ("eager_cg_slicing_s", Json.Float eager_s);
            ("demand_cg_slicing_s", Json.Float demand_s);
            ("speedup", Json.Float speedup);
            ("skipped_method_ratio", Json.Float skipped_ratio);
          ])
      entries
  in
  Json.List rows

let run_demand () =
  Fmt.pf fmt "Demand-driven slicing — eager vs method-index callgraph@\n";
  ignore (measure_demand ());
  Fmt.pf fmt "@\n"

(* Machine-readable bench output: the per-app per-phase wall-clock rows
   plus the cache and worker-pool speedup benches, dumped to a JSON file
   CI can diff across commits (see --baseline). *)
let write_phase_timings path =
  let entries = Corpus.case_studies () in
  let apps, phase_percentiles = measure_phase_timings () in
  (* Warm-cache speedup: the same apps through the durable runner, once
     against an empty result cache (populating it) and once warm — the
     warm pass must skip every pipeline phase and serve all apps from
     the content-addressed store. *)
  let cache =
    let dir = Filename.temp_file "bench_cache" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    let options = { Runner.default_options with Runner.ro_cache_dir = Some dir } in
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let _, cold_s = time (fun () -> Runner.run options entries) in
    let warm, warm_s = time (fun () -> Runner.run options entries) in
    let hits =
      match warm with
      | Ok r ->
          List.length
            (List.filter (fun a -> a.Runner.ar_cached) r.Runner.rn_results)
      | Error _ -> 0
    in
    Fmt.pf fmt
      "  warm result cache: %.3fs -> %.3fs over %d apps (%d hits, %.0fx)@\n"
      cold_s warm_s (List.length entries) hits
      (if warm_s > 0. then cold_s /. warm_s else 0.);
    Json.Obj
      [
        ("cold_s", Json.Float cold_s);
        ("warm_s", Json.Float warm_s);
        ( "speedup",
          Json.Float (if warm_s > 0. then cold_s /. warm_s else 0.) );
        ("hits", Json.Int hits);
        ("apps", Json.Int (List.length entries));
      ]
  in
  (* Worker-pool speedup: the same corpus through the durable runner at
     --jobs 1 vs --jobs 4.  The workload is retry-ladder dominated: a
     starved step budget with escalation disabled makes every app spend
     its attempts degraded, so the cost is the ladder's backoff sleeps —
     which the pool's workers serve concurrently.  (A CPU-bound corpus
     only parallelizes on a multi-core host; backoff overlap measures
     the pool's concurrency on any machine, including single-core CI.) *)
  let pool =
    let jobs = 4 in
    let options =
      {
        Runner.default_options with
        Runner.ro_pipeline =
          {
            Pipeline.default_options with
            Pipeline.op_limits =
              {
                Budget.bl_max_steps = 500;
                bl_max_depth = 24;
                bl_deadline_s = None;
              };
          };
        ro_policy =
          {
            Retry.default_policy with
            Retry.rp_backoff_s = 0.2;
            rp_escalate_steps = 1;
            rp_escalate_depth = 0;
            rp_escalate_deadline = 1.0;
          };
      }
    in
    let time j =
      let t0 = Unix.gettimeofday () in
      (match Runner.run { options with Runner.ro_jobs = j } entries with
      | Ok _ -> ()
      | Error e -> Fmt.failwith "pool bench: %s" e);
      Unix.gettimeofday () -. t0
    in
    let seq_s = time 1 in
    let par_s = time jobs in
    Fmt.pf fmt
      "  worker pool (backoff-overlap workload): --jobs 1 %.3fs -> --jobs %d %.3fs over %d apps (%.1fx)@\n"
      seq_s jobs par_s (List.length entries)
      (if par_s > 0. then seq_s /. par_s else 0.);
    Json.Obj
      [
        ("jobs", Json.Int jobs);
        ("apps", Json.Int (List.length entries));
        ("workload", Json.Str "retry-backoff overlap (starved step budget)");
        ("sequential_s", Json.Float seq_s);
        ("parallel_s", Json.Float par_s);
        ("speedup", Json.Float (if par_s > 0. then seq_s /. par_s else 0.));
      ]
  in
  (* Self-healing overhead: the watchdog heartbeats (one Up_beat frame
     per phase per app over the result pipe), the journal record
     checksums and the cache content digests, all on — against the same
     pooled run with every one of them off.  Min-of-3 each side to shave
     scheduler noise; the differential must stay under 2% or the bench
     fails, so the integrity layer can never quietly become a tax. *)
  let watchdog =
    let budget = 1.02 in
    let runs = 5 in
    let gen_entries = Corpus.generated ~seed:3 ~count:100 in
    let module Journal = Extr_resilience.Journal in
    let module Store = Extr_store.Store in
    let time_once tag ~integrity ~heartbeat =
      let dir = Filename.temp_file "bench_watchdog" "" in
      Sys.remove dir;
      Sys.mkdir dir 0o755;
      let options =
        {
          Runner.default_options with
          Runner.ro_journal = Some (Filename.concat dir (tag ^ ".jsonl"));
          ro_cache_dir = Some (Filename.concat dir (tag ^ "-cache"));
          ro_jobs = 2;
          ro_corpus_tag = Some "gen=3:100";
          ro_heartbeat = heartbeat;
          ro_hang_timeout = (if heartbeat then Some 5.0 else None);
        }
      in
      Journal.set_integrity integrity;
      Store.set_integrity integrity;
      let t0 = Unix.gettimeofday () in
      (match Runner.run options gen_entries with
      | Ok _ -> ()
      | Error e -> Fmt.failwith "watchdog bench: %s" e);
      let elapsed = Unix.gettimeofday () -. t0 in
      Journal.set_integrity true;
      Store.set_integrity true;
      elapsed
    in
    (* One untimed warmup, then interleaved off/on pairs with the
       within-pair order alternating: both sides sample the same
       allocator and page-cache drift, and neither side systematically
       runs earlier — scheduler noise at this scale otherwise dwarfs a
       2% differential.  Min of each side is the floor estimate. *)
    ignore (time_once "warmup" ~integrity:true ~heartbeat:true);
    let off_s = ref infinity and on_s = ref infinity in
    let sample_off i =
      off_s :=
        min !off_s
          (time_once (Printf.sprintf "off%d" i) ~integrity:false
             ~heartbeat:false)
    and sample_on i =
      on_s :=
        min !on_s
          (time_once (Printf.sprintf "on%d" i) ~integrity:true
             ~heartbeat:true)
    in
    for i = 0 to runs - 1 do
      if i mod 2 = 0 then begin
        sample_off i;
        sample_on i
      end
      else begin
        sample_on i;
        sample_off i
      end
    done;
    let off_s = !off_s and on_s = !on_s in
    let ratio = if off_s > 0. then on_s /. off_s else 1.0 in
    let pass = ratio < budget in
    Fmt.pf fmt
      "  watchdog + integrity: off %.3fs -> on %.3fs over %d apps \
       (overhead %.2f%%, budget %.0f%%)@\n"
      off_s on_s (List.length gen_entries)
      ((ratio -. 1.0) *. 100.0)
      ((budget -. 1.0) *. 100.0);
    if not pass then
      Fmt.failwith
        "watchdog bench: heartbeat+checksum overhead %.2fx exceeds the %.2fx \
         budget"
        ratio budget;
    Json.Obj
      [
        ("apps", Json.Int (List.length gen_entries));
        ("jobs", Json.Int 2);
        ("off_s", Json.Float off_s);
        ("on_s", Json.Float on_s);
        ("overhead_ratio", Json.Float ratio);
        ("budget", Json.Float budget);
        ("pass", Json.Bool pass);
      ]
  in
  (* Sharded corpus farm: 1000 generated apps split --shard K/4, merged
     back offline.  max_shard_s approximates the fleet's wall-clock when
     the shards run on separate machines; merge_s is the reassembly
     cost; the merged envelope must stay byte-identical to the unsharded
     run's (asserted here, not just measured). *)
  let shard =
    let shards = 4 in
    let seed = 1 and count = 1000 in
    let gen_entries = Corpus.generated ~seed ~count in
    let dir = Filename.temp_file "bench_shard" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    let p name = Filename.concat dir name in
    let options ?shard tag =
      {
        Runner.default_options with
        Runner.ro_journal = Some (p (tag ^ ".jsonl"));
        ro_cache_dir = Some (p (tag ^ "-cache"));
        ro_shard = shard;
        ro_corpus_tag = Some (Printf.sprintf "gen=%d:%d" seed count);
      }
    in
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let run o =
      match Runner.run o gen_entries with
      | Ok r -> r
      | Error e -> Fmt.failwith "shard bench: %s" e
    in
    let base_o = options "base" in
    let base_run, unsharded_s = time (fun () -> run base_o) in
    let ks = List.init shards (fun i -> i + 1) in
    let shard_s =
      List.map
        (fun k ->
          snd
            (time (fun () ->
                 run (options ~shard:(k, shards) (Printf.sprintf "s%d" k)))))
        ks
    in
    let max_shard_s = List.fold_left max 0. shard_s in
    let merged, merge_s =
      time (fun () ->
          match
            Merge.merge ~options:base_o ~entries:gen_entries
              ~journals:(List.map (fun k -> p (Printf.sprintf "s%d.jsonl" k)) ks)
              ~cache_dirs:
                (List.map (fun k -> p (Printf.sprintf "s%d-cache" k)) ks)
              ()
          with
          | Ok t -> t
          | Error e -> Fmt.failwith "shard bench merge: %s" e)
    in
    let identical =
      String.equal
        (Runner.report_json
           ~config:(Runner.journal_fingerprint base_o)
           base_run)
        (Merge.report_json merged)
    in
    if not identical then
      Fmt.failwith "shard bench: merged envelope differs from unsharded run";
    let speedup =
      if max_shard_s +. merge_s > 0. then
        unsharded_s /. (max_shard_s +. merge_s)
      else 0.
    in
    Fmt.pf fmt
      "  shard farm: %d generated apps, unsharded %.3fs vs %d shards \
       (slowest %.3fs) + merge %.3fs (%.1fx fleet speedup, byte-identical)@\n"
      count unsharded_s shards max_shard_s merge_s speedup;
    Json.Obj
      [
        ("shards", Json.Int shards);
        ("apps", Json.Int count);
        ("unsharded_s", Json.Float unsharded_s);
        ("max_shard_s", Json.Float max_shard_s);
        ("merge_s", Json.Float merge_s);
        ("speedup", Json.Float speedup);
      ]
  in
  let demand = measure_demand () in
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "pipeline");
        ("apps", Json.List apps);
        ("phase_percentiles", phase_percentiles);
        ("demand", demand);
        ("cache", cache);
        ("pool", pool);
        ("shard", shard);
        ("watchdog", watchdog);
      ]
  in
  Extr_telemetry.Export.write_file path (Json.to_string doc ^ "\n");
  Fmt.pf fmt "  per-phase timings for %d apps written to %s@\n@\n"
    (List.length apps) path

let run_timing ?(json = "BENCH_pipeline.json") () =
  Fmt.pf fmt "Timing — analysis wall-clock per app class (§5.1)@\n";
  let evals = Lazy.force table1_evals in
  let opens = List.filter (fun ae -> not ae.Eval.ae_app.Spec.a_closed) evals in
  let closed = List.filter (fun ae -> ae.Eval.ae_app.Spec.a_closed) evals in
  let avg group =
    match group with
    | [] -> 0.
    | _ ->
        List.fold_left
          (fun acc ae -> acc +. ae.Eval.ae_report.Report.rp_elapsed_s)
          0. group
        /. float_of_int (List.length group)
  in
  Fmt.pf fmt "  open-source apps: avg %.3fs (paper: ~4 min on real APKs)@\n"
    (avg opens);
  Fmt.pf fmt "  closed-source apps: avg %.3fs (paper: 11 min - 3 h)@\n" (avg closed);
  (* TED: static analysis vs automatic UI fuzzing cost (paper: 132.5 min
     vs 10.3 min — fuzzing is cheaper but finds far less). *)
  let entries = Corpus.case_studies () in
  let ted = Option.get (Corpus.find entries "TED (case study)") in
  let apk = Lazy.force ted.Corpus.c_apk in
  let t0 = Unix.gettimeofday () in
  let analysis = Pipeline.analyze ~options:Pipeline.default_options apk in
  let static_t = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let trace = Fuzz.run ted.Corpus.c_app apk ~policy:`Auto in
  let fuzz_t = Unix.gettimeofday () -. t1 in
  Fmt.pf fmt
    "  TED: extractocol %.3fs (%d txs) vs automatic fuzzing %.4fs (%d requests) — static costs more, finds more@\n@\n"
    static_t
    (List.length analysis.Pipeline.an_report.Report.rp_transactions)
    fuzz_t
    (List.length trace.Http.tr_entries);
  write_phase_timings json

(* ------------------------------------------------------------------ *)
(* Regression harness: bench --baseline BENCH_pipeline.json           *)
(* ------------------------------------------------------------------ *)

(* Diff a fresh timing measurement against a committed baseline
   (BENCH_pipeline.json).  A row regresses when current/baseline exceeds
   the threshold AND the absolute delta clears a noise floor (5 ms) —
   most phases here run sub-millisecond, where pure ratios would flag
   scheduler jitter.  Exit 4 on any regression; the full comparison
   table is written into the output JSON alongside the fresh rows. *)
let exit_regressed = 4

let run_baseline ~baseline ?(threshold = 1.5) ?(json = "BENCH_compare.json") ()
    =
  let base =
    match In_channel.with_open_text baseline In_channel.input_all with
    | exception Sys_error msg -> Fmt.failwith "cannot read baseline: %s" msg
    | src -> (
        match Json.of_string_opt src with
        | Some j -> j
        | None -> Fmt.failwith "baseline %s is not valid JSON" baseline)
  in
  Fmt.pf fmt "Bench regression check against %s (threshold %.2fx)@\n" baseline
    threshold;
  let apps, percentiles = measure_phase_timings () in
  let num = function
    | Json.Float f -> Some f
    | Json.Int n -> Some (float_of_int n)
    | _ -> None
  in
  let rows = ref [] in
  let regressions = ref 0 in
  let check ~scope ~metric ~floor b c =
    let ratio =
      if b > 0. then c /. b else if c > 0. then Float.infinity else 1.0
    in
    let regressed = ratio > threshold && c -. b > floor in
    if regressed then incr regressions;
    rows := (scope, metric, b, c, ratio, regressed) :: !rows
  in
  let floor_s = 0.005 in
  let base_apps =
    match Json.member "apps" base with Some (Json.List l) -> l | _ -> []
  in
  List.iter
    (fun cur_app ->
      let name =
        match Json.member "app" cur_app with Some (Json.Str s) -> s | _ -> "?"
      in
      match
        List.find_opt
          (fun b -> Json.member "app" b = Some (Json.Str name))
          base_apps
      with
      | None -> Fmt.pf fmt "  %-28s not in baseline (skipped)@\n" name
      | Some b ->
          (match
             ( Option.bind (Json.member "total_s" b) num,
               Option.bind (Json.member "total_s" cur_app) num )
           with
          | Some bb, Some cc ->
              check ~scope:name ~metric:"total_s" ~floor:floor_s bb cc
          | _ -> ());
          (match (Json.member "phases" b, Json.member "phases" cur_app) with
          | Some (Json.Obj bp), Some (Json.Obj cp) ->
              List.iter
                (fun (ph, cv) ->
                  match Option.bind (List.assoc_opt ph bp) num with
                  | Some bb -> (
                      match num cv with
                      | Some cc ->
                          check ~scope:name ~metric:("phase." ^ ph)
                            ~floor:floor_s bb cc
                      | None -> ())
                  | None -> ())
                cp
          | _ -> ()))
    apps;
  (* Fleet-level p50 (µs) across all apps.  p95/p99 are skipped — with a
     handful of histogram observations per phase per app they are the
     worst single sample, i.e. pure tail noise.  The floor must exceed
     one 1-2-5 bucket width at the phases' current single-digit-
     millisecond scale: a sample landing one bucket up moves the
     interpolated percentile ~2x, which a pure ratio threshold would
     misread as a regression. *)
  let floor_us = 25_000.0 in
  (match (Json.member "phase_percentiles" base, percentiles) with
  | Some (Json.Obj bp), Json.Obj cp ->
      List.iter
        (fun (ph, cv) ->
          match List.assoc_opt ph bp with
          | None -> ()
          | Some bv ->
              List.iter
                (fun metric ->
                  match
                    ( Option.bind (Json.member metric bv) num,
                      Option.bind (Json.member metric cv) num )
                  with
                  | Some bb, Some cc ->
                      check ~scope:("fleet." ^ ph) ~metric ~floor:floor_us bb
                        cc
                  | _ -> ())
                [ "p50_us" ])
        cp
  | _ -> ());
  (* Demand-driven callgraph+slicing (ROADMAP item 1): the per-app
     demand-mode wall-clock is re-measured and diffed row by row, so a
     change that quietly degrades the lazy path back toward the eager
     cost fails the gate even while total_s hides it in noise. *)
  let demand = measure_demand () in
  (match (Json.member "demand" base, demand) with
  | Some (Json.List bl), Json.List cl ->
      List.iter
        (fun cur ->
          let name =
            match Json.member "app" cur with Some (Json.Str s) -> s | _ -> "?"
          in
          match
            List.find_opt
              (fun b -> Json.member "app" b = Some (Json.Str name))
              bl
          with
          | None -> Fmt.pf fmt "  %-28s not in demand baseline (skipped)@\n" name
          | Some b -> (
              match
                ( Option.bind (Json.member "demand_cg_slicing_s" b) num,
                  Option.bind (Json.member "demand_cg_slicing_s" cur) num )
              with
              | Some bb, Some cc ->
                  check ~scope:("demand." ^ name)
                    ~metric:"demand_cg_slicing_s" ~floor:floor_s bb cc
              | _ -> ()))
        cl
  | _, _ -> Fmt.pf fmt "  baseline has no demand rows (skipped)@\n");
  let rows = List.rev !rows in
  Fmt.pf fmt "  %-28s %-24s %12s %12s %8s@\n" "scope" "metric" "baseline"
    "current" "ratio";
  List.iter
    (fun (scope, metric, b, c, ratio, regressed) ->
      Fmt.pf fmt "  %-28s %-24s %12.6f %12.6f %7.2fx%s@\n" scope metric b c
        ratio
        (if regressed then "  REGRESSED" else ""))
    rows;
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "pipeline");
        ("apps", Json.List apps);
        ("phase_percentiles", percentiles);
        ("demand", demand);
        ( "comparison",
          Json.Obj
            [
              ("baseline", Json.Str baseline);
              ("threshold", Json.Float threshold);
              ("regressions", Json.Int !regressions);
              ( "rows",
                Json.List
                  (List.map
                     (fun (scope, metric, b, c, ratio, regressed) ->
                       Json.Obj
                         [
                           ("scope", Json.Str scope);
                           ("metric", Json.Str metric);
                           ("baseline", Json.Float b);
                           ("current", Json.Float c);
                           ("ratio", Json.Float ratio);
                           ("regressed", Json.Bool regressed);
                         ])
                     rows) );
            ] );
      ]
  in
  Extr_telemetry.Export.write_file json (Json.to_string doc ^ "\n");
  Fmt.pf fmt "  comparison written to %s@\n" json;
  if !regressions > 0 then begin
    Fmt.pf fmt "  %d regression(s) past %.2fx@\n" !regressions threshold;
    exit exit_regressed
  end
  else Fmt.pf fmt "  no regressions past %.2fx@\n" threshold

(* ------------------------------------------------------------------ *)
(* Bechamel microbenches                                              *)
(* ------------------------------------------------------------------ *)

let bench_counter = Metrics.counter "bench.noop"

(* Disabled-profiler fast path: the cursor against its own (disabled)
   accumulator, so the bench never flips the default instance. *)
let bench_cursor =
  Profile.cursor
    ~profile:(Profile.create ())
    ~phase:"bench" ~render:Ir.Method_id.to_string ()

let bench_mid = { Ir.id_cls = "bench"; id_name = "noop" }

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  Fmt.pf fmt "Microbenchmarks (Bechamel, monotonic clock)@\n";
  let diode_entry = Option.get (Corpus.find (Corpus.case_studies ()) "Diode") in
  let diode_apk = Lazy.force diode_entry.Corpus.c_apk in
  let rr_entry =
    Option.get (Corpus.find (Corpus.case_studies ()) "radio reddit")
  in
  let rr_apk = Lazy.force rr_entry.Corpus.c_apk in
  let regex =
    Regex.of_pattern "http://www\\.reddit\\.com/search/\\.json\\?q=(.*)&sort=(.*)"
  in
  (* Worst case for the statement-level call-site lookup: the last
     statement of the largest Diode method — the linear scan this bench
     guarded the replacement of walked the whole site list to reach it. *)
  let diode_cg, diode_last_sid =
    let prog =
      Prog.of_program (Pipeline.with_library_classes diode_apk.Apk.program)
    in
    let cg = Callgraph.build ~callback_resolver:Callbacks.resolve prog in
    let largest =
      match Prog.app_methods prog with
      | [] -> Fmt.failwith "Diode has no app methods"
      | m :: ms ->
          List.fold_left
            (fun best (m : Ir.meth) ->
              if Array.length m.Ir.m_body > Array.length best.Ir.m_body then m
              else best)
            m ms
    in
    ( cg,
      {
        Ir.sid_meth = Ir.method_id_of_meth largest;
        sid_idx = Array.length largest.Ir.m_body - 1;
      } )
  in
  let tests =
    [
      (* Table 1 / §5.1: whole-pipeline analysis latency. *)
      Test.make ~name:"pipeline:radio-reddit"
        (Staged.stage (fun () ->
             ignore (Pipeline.analyze ~options:Pipeline.default_options rr_apk)));
      (* Figure 3: slicing cost on the Diode-scale app. *)
      Test.make ~name:"slicing:diode"
        (Staged.stage (fun () ->
             let program = Pipeline.with_library_classes diode_apk.Apk.program in
             let prog = Prog.of_program program in
             let cg = Callgraph.build ~callback_resolver:Callbacks.resolve prog in
             ignore (Slicer.run prog cg)));
      (* Demand-driven lookups: one statement's call-site records come
         from an O(1) per-method array slot (previously a linear walk of
         the method's whole site list per provenance/pairing query). *)
      Test.make ~name:"callgraph:callsite-at"
        (Staged.stage (fun () ->
             ignore (Callgraph.callsite_at diode_cg diode_last_sid)));
      (* §5.1 signature validity: regex matching over traces. *)
      Test.make ~name:"regex:uri-match"
        (Staged.stage (fun () ->
             ignore
               (Regex.matches regex
                  "http://www.reddit.com/search/.json?q=ocaml&sort=top")));
      (* Table 2: byte accounting. *)
      Test.make ~name:"strsig:byte-account"
        (Staged.stage (fun () ->
             ignore
               (Strsig.byte_counts
                  (Strsig.concat
                     [
                       Strsig.lit "id="; Strsig.unknown; Strsig.lit "&uh=";
                       Strsig.unknown;
                     ])
                  "id=t3_9x&uh=banana")));
      (* Dynamic baseline cost. *)
      Test.make ~name:"fuzz:radio-reddit"
        (Staged.stage (fun () ->
             ignore (Fuzz.run rr_entry.Corpus.c_app rr_apk ~policy:`Full)));
      (* Telemetry overhead: the disabled fast paths must be a flag
         check, and a fully-instrumented pipeline run bounds the
         enabled cost against pipeline:radio-reddit above. *)
      Test.make ~name:"telemetry:incr-disabled"
        (Staged.stage (fun () -> Metrics.incr bench_counter));
      Test.make ~name:"telemetry:span-disabled"
        (Staged.stage (fun () -> Span.with_span "bench.noop" (fun () -> ())));
      Test.make ~name:"pipeline:radio-reddit-telemetry"
        (Staged.stage (fun () ->
             Span.reset Span.default;
             Span.set_enabled Span.default true;
             Metrics.set_enabled Metrics.default true;
             ignore (Pipeline.analyze ~options:Pipeline.default_options rr_apk);
             Span.set_enabled Span.default false;
             Metrics.set_enabled Metrics.default false));
      (* Method-level profiler overhead: the disabled cursor visit is
         one flag check, and a profiler-enabled pipeline run bounds the
         enabled cost (clock reads only on method switches) against
         pipeline:radio-reddit above — the <5% budget. *)
      Test.make ~name:"telemetry:profile-visit-disabled"
        (Staged.stage (fun () -> Profile.visit bench_cursor bench_mid));
      Test.make ~name:"pipeline:radio-reddit-profiled"
        (Staged.stage (fun () ->
             Profile.reset Profile.default;
             Profile.set_enabled Profile.default true;
             ignore (Pipeline.analyze ~options:Pipeline.default_options rr_apk);
             Profile.set_enabled Profile.default false));
      (* Provenance overhead: the disabled recorder is one flag check at
         every instrumentation site (the default configuration), and a
         provenance-enabled pipeline run bounds the evidence-recording
         cost against pipeline:radio-reddit above. *)
      Test.make ~name:"provenance:record-disabled"
        (Staged.stage (fun () ->
             Provenance.record_rule Provenance.default
               ~stmt:
                 {
                   Ir.sid_meth = { Ir.id_cls = "bench"; id_name = "noop" };
                   sid_idx = 0;
                 }
               "bench.noop"));
      Test.make ~name:"pipeline:radio-reddit-provenance"
        (Staged.stage (fun () ->
             Provenance.reset Provenance.default;
             Provenance.set_enabled Provenance.default true;
             ignore (Pipeline.analyze ~options:Pipeline.default_options rr_apk);
             Provenance.set_enabled Provenance.default false));
    ]
  in
  let grouped = Test.make_grouped ~name:"extractocol" ~fmt:"%s %s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~stabilize:false () in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Fmt.pf fmt "  %-34s %14.1f ns/run@\n" name est
      | Some _ | None -> Fmt.pf fmt "  %-34s (no estimate)@\n" name)
    results;
  Fmt.pf fmt "@\n"

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)
(* ------------------------------------------------------------------ *)

let run_ablate_aug () =
  Fmt.pf fmt "Ablation — object-aware slice augmentation (§3.1)@\n";
  let entries = Corpus.case_studies () in
  let e = Option.get (Corpus.find entries "TED (case study)") in
  let apk = Lazy.force e.Corpus.c_apk in
  let program = Pipeline.with_library_classes apk.Apk.program in
  let prog = Prog.of_program program in
  let cg = Callgraph.build ~callback_resolver:Callbacks.resolve prog in
  let sizes options =
    let slices = Slicer.run ~options prog cg in
    List.fold_left
      (fun acc (sl : Slicer.slice) -> acc + Ir.Stmt_set.cardinal sl.Slicer.sl_stmts)
      0 slices.Slicer.r_response
  in
  let on = sizes { Slicer.default_options with Slicer.opt_augmentation = true } in
  let off = sizes { Slicer.default_options with Slicer.opt_augmentation = false } in
  Fmt.pf fmt
    "  response-slice statements: with augmentation %d, without %d (initialization context lost)@\n@\n"
    on off

(** The §3.4 weather-app example, hand-built: a location callback stores a
    query fragment ("city=<lat>") into the heap; a click later builds the
    request from it.  Without the asynchronous-event handling the constant
    keyword "city" disappears from the signature. *)
let weather_app () : Apk.t =
  let cls = "com.example.weather.Main" in
  let loc_cls = "com.example.weather.Loc" in
  let click_cls = "com.example.weather.Click" in
  let frag_field = { Ir.fcls = cls; fname = "frag"; fty = Ir.Str } in
  let act_ty = Ir.Obj cls in
  let holder_init c =
    B.mk_meth ~cls:c ~name:"<init>" ~params:[ B.local "a" act_ty ] ~ret:Ir.Void
      (fun b ->
        B.set_field b (Ir.this_var c)
          { Ir.fcls = c; fname = "act"; fty = act_ty }
          (Ir.Local (B.local "a" act_ty)))
  in
  let on_loc =
    B.mk_meth ~cls:loc_cls ~name:"onLocationChanged"
      ~params:[ B.local "loc" (Ir.Obj Api.location) ]
      ~ret:Ir.Void
      (fun b ->
        let lat =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str
               (B.local "loc" (Ir.Obj Api.location))
               Api.location "getLat" [])
        in
        let sb = B.new_obj b Api.string_builder [ B.vstr "city=" ] in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ B.vl lat ]);
        let frag =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        let act =
          B.get_field b (Ir.this_var loc_cls)
            { Ir.fcls = loc_cls; fname = "act"; fty = act_ty }
        in
        B.set_field b act frag_field (Ir.Local frag))
  in
  let on_click =
    B.mk_meth ~cls:click_cls ~name:"onClick"
      ~params:[ B.local "v" (Ir.Obj Api.view) ]
      ~ret:Ir.Void
      (fun b ->
        let act =
          B.get_field b (Ir.this_var click_cls)
            { Ir.fcls = click_cls; fname = "act"; fty = act_ty }
        in
        let frag = B.get_field b act frag_field in
        let sb =
          B.new_obj b Api.string_builder
            [ B.vstr "http://api.weather.example/report?" ]
        in
        B.call b
          (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
             "append" [ B.vl frag ]);
        let url =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        let req = B.new_obj b Api.http_get [ B.vl url ] in
        let client = B.new_obj b Api.default_http_client [] in
        ignore
          (B.call_ret b (Ir.Obj Api.http_response)
             (B.virtual_call ~ret:(Ir.Obj Api.http_response) client Api.http_client
                "execute" [ B.vl req ])))
  in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        let this = Ir.this_var cls in
        let lm = B.new_obj b Api.location_manager [] in
        let ll = B.new_obj b loc_cls [ Ir.Local this ] in
        B.call b
          (B.virtual_call lm Api.location_manager "requestLocationUpdates"
             [ B.vl ll ]);
        let lsn = B.new_obj b click_cls [ Ir.Local this ] in
        let view =
          B.call_ret b (Ir.Obj Api.view)
            (B.virtual_call ~ret:(Ir.Obj Api.view) this Api.activity "findViewById"
               [ B.vint 42 ])
        in
        B.call b (B.virtual_call view Api.view "setOnClickListener" [ B.vl lsn ]))
  in
  let classes =
    [
      B.mk_cls ~super:Api.activity
        ~fields:[ B.mk_field "frag" Ir.Str ]
        cls [ on_create ];
      B.mk_cls ~super:Api.location_listener
        ~fields:[ B.mk_field "act" act_ty ]
        loc_cls
        [ holder_init loc_cls; on_loc ];
      B.mk_cls ~super:Api.on_click_listener
        ~fields:[ B.mk_field "act" act_ty ]
        click_cls
        [ holder_init click_cls; on_click ];
    ]
  in
  Apk.make ~package:"com.example.weather" ~label:"weather" ~activities:[ cls ]
    { Ir.p_classes = classes; p_entries = [] }

let run_ablate_async () =
  Fmt.pf fmt
    "Ablation — asynchronous-event heuristic (§3.4, the weather-app example)@\n";
  let apk = weather_app () in
  let sig_of options =
    let analysis = Pipeline.analyze ~options apk in
    match analysis.Pipeline.an_report.Report.rp_transactions with
    | [ tr ] -> Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri
    | txs -> Fmt.str "(%d transactions)" (List.length txs)
  in
  let on = sig_of Pipeline.default_options in
  let off = sig_of Pipeline.open_source_options in
  Fmt.pf fmt "  with heuristic:    %s@\n" on;
  Fmt.pf fmt "  without heuristic: %s@\n" off;
  Fmt.pf fmt "  keyword 'city' identified: with=%b without=%b@\n@\n"
    (Tables.Str_replace.contains on "city")
    (Tables.Str_replace.contains off "city")

let run_ablate_pairing () =
  Fmt.pf fmt "Ablation — disjoint-segment pairing (§3.3, Figure 5)@\n";
  let entries = Corpus.case_studies () in
  let e = Option.get (Corpus.find entries "SharedDP") in
  let apk = Lazy.force e.Corpus.c_apk in
  let count options =
    let analysis = Pipeline.analyze ~options apk in
    List.length analysis.Pipeline.an_report.Report.rp_transactions
  in
  let ctx_on = count Pipeline.default_options in
  let ctx_off =
    count { Pipeline.default_options with Pipeline.op_context_sensitive = false }
  in
  Fmt.pf fmt
    "  transactions with disjoint contexts: %d; merged (naive) contexts: %d@\n@\n"
    ctx_on ctx_off

let run_ablate_worklist () =
  Fmt.pf fmt
    "Ablation — topological signature building vs naive iteration (§3.2)@\n";
  let entries = Corpus.case_studies () in
  let e = Option.get (Corpus.find entries "Diode") in
  let apk = Lazy.force e.Corpus.c_apk in
  let program = Pipeline.with_library_classes apk.Apk.program in
  let apk = { apk with Apk.program } in
  let prog = Prog.of_program program in
  let cg = Callgraph.build ~callback_resolver:Callbacks.resolve prog in
  let slices = Slicer.run prog cg in
  let time options =
    let t0 = Unix.gettimeofday () in
    let interp = Interp.create ~options ~slices prog cg apk in
    let txs = Interp.run interp in
    (Unix.gettimeofday () -. t0, List.length txs)
  in
  let t_topo, n_topo = time Interp.default_options in
  let t_naive, n_naive =
    time { Interp.default_options with Interp.io_naive_order = true }
  in
  Fmt.pf fmt
    "  topological order: %.4fs (%d txs); naive iteration: %.4fs (%d txs); slowdown %.1fx@\n@\n"
    t_topo n_topo t_naive n_naive
    (if t_topo > 0. then t_naive /. t_topo else 0.)

let run_ablate_intents () =
  (* §4 extension: with intent resolution on, the intent-carried requests
     that Table 1 deliberately misses become statically visible. *)
  Fmt.pf fmt "Ablation — intent-service resolution (§4 extension)@
";
  let entries = Corpus.table1 () in
  let candidates =
    List.filter
      (fun (e : Corpus.entry) ->
        List.exists
          (fun (ep : Spec.endpoint) -> not ep.Spec.e_supported)
          e.Corpus.c_app.Spec.a_endpoints)
      entries
  in
  let sample = List.filteri (fun i _ -> i < 3) candidates in
  List.iter
    (fun (e : Corpus.entry) ->
      let apk = Lazy.force e.Corpus.c_apk in
      let count options =
        List.length
          (Pipeline.analyze ~options apk).Pipeline.an_report
            .Report.rp_transactions
      in
      let base_opts =
        if e.Corpus.c_app.Spec.a_closed then Pipeline.default_options
        else Pipeline.open_source_options
      in
      let off = count base_opts in
      let on = count { base_opts with Pipeline.op_intents = true } in
      let total = List.length e.Corpus.c_app.Spec.a_endpoints in
      Fmt.pf fmt
        "  %-24s endpoints %2d: transactions %2d (paper config) -> %2d (intents resolved)@
"
        e.Corpus.c_app.Spec.a_name total off on)
    sample;
  Fmt.pf fmt "@
"

let run_sweep () =
  (* Scalability: analysis wall-clock as the app grows, topological
     signature building vs the naive iterate-to-fixpoint baseline (§3.2's
     scalability argument beyond the single-app ablation). *)
  Fmt.pf fmt "Scalability sweep — analysis time vs app size@
";
  Fmt.pf fmt "  %10s %10s %12s %12s %9s@
" "endpoints" "stmts" "topo (s)"
    "naive (s)" "slowdown";
  List.iter
    (fun n ->
      let per_method = n / 2 in
      let row =
        Extr_corpus.Synth.row
          (Printf.sprintf "sweep-%d" n)
          "com.sweep" ~https:true ~closed:true
          ~get:(per_method, per_method, per_method)
          ~post:(n - per_method, n - per_method, n - per_method)
          ~query:(n / 3) ~json:(n / 3) ~pairs:n
      in
      let app = Extr_corpus.Synth.synthesize_app row in
      let apk = Corpus.apk_of_app app in
      (* Shared front end; only the signature-building order differs. *)
      let program = Pipeline.with_library_classes apk.Apk.program in
      let apk = { apk with Apk.program } in
      let prog = Prog.of_program program in
      let cg = Callgraph.build ~callback_resolver:Callbacks.resolve prog in
      let slices = Slicer.run prog cg in
      let time naive =
        let options =
          { Interp.default_options with Interp.io_naive_order = naive }
        in
        let t0 = Unix.gettimeofday () in
        let interp = Interp.create ~options ~slices prog cg apk in
        let txs = Interp.run interp in
        (Unix.gettimeofday () -. t0, List.length txs)
      in
      let t_topo, _ = time false in
      let t_naive, _ = time true in
      Fmt.pf fmt "  %10d %10d %12.4f %12.4f %8.1fx@
" n
        (Prog.app_stmt_count prog) t_topo t_naive
        (if t_topo > 0. then t_naive /. t_topo else 0.))
    [ 5; 10; 20; 40; 80 ];
  Fmt.pf fmt "@
"

let run_ablate_deobf () =
  Fmt.pf fmt "Ablation — library de-obfuscation (§3.4)@
";
  let entries = Corpus.case_studies () in
  let e = Option.get (Corpus.find entries "radio reddit") in
  let apk = Lazy.force e.Corpus.c_apk in
  let count apk =
    let analysis = Pipeline.analyze apk in
    List.length analysis.Pipeline.an_report.Report.rp_transactions
  in
  let obf, _ = Extr_apk.Obfuscator.obfuscate_libraries apk in
  let recovered, mapping = Extr_apk.Deobfuscator.deobfuscate obf in
  Fmt.pf fmt
    "  transactions: original %d; library-obfuscated (no recovery) %d; after de-obfuscation %d (map: %d classes, %d methods)@
@
"
    (count apk) (count obf) (count recovered)
    (List.length mapping.Extr_apk.Deobfuscator.dm_classes)
    (List.length mapping.Extr_apk.Deobfuscator.dm_methods)

(* ------------------------------------------------------------------ *)
(* Main                                                               *)
(* ------------------------------------------------------------------ *)

let all () =
  run_table3 ();
  run_table4 ();
  run_table5 ();
  run_table6 ();
  run_fig3 ();
  run_fig5 ();
  run_ablate_aug ();
  run_ablate_async ();
  run_ablate_pairing ();
  run_ablate_worklist ();
  run_ablate_deobf ();
  run_ablate_intents ();
  run_sweep ();
  run_table1 ();
  run_fig6 ();
  run_fig7 ();
  run_table2 ();
  run_timing ();
  run_micro ()

(* bench --baseline FILE [--threshold X] [--json OUT] *)
let parse_baseline args =
  let baseline = ref None in
  let threshold = ref None in
  let json = ref None in
  let rec go = function
    | [] -> ()
    | "--baseline" :: path :: rest ->
        baseline := Some path;
        go rest
    | "--threshold" :: t :: rest -> (
        match float_of_string_opt t with
        | Some f when f > 0. ->
            threshold := Some f;
            go rest
        | _ -> Fmt.failwith "invalid --threshold %S" t)
    | "--json" :: path :: rest ->
        json := Some path;
        go rest
    | arg :: _ -> Fmt.failwith "unknown bench --baseline argument %S" arg
  in
  go args;
  match !baseline with
  | None -> Fmt.failwith "--baseline needs a FILE"
  | Some baseline ->
      run_baseline ~baseline ?threshold:!threshold ?json:!json ()

let () =
  match Sys.argv with
  | [| _ |] -> all ()
  | _ when Array.length Sys.argv > 1 && Sys.argv.(1) = "--baseline" ->
      parse_baseline (List.tl (Array.to_list Sys.argv))
  | [| _; "table1" |] -> run_table1 ()
  | [| _; "fig6" |] -> run_fig6 ()
  | [| _; "fig7" |] -> run_fig7 ()
  | [| _; "table2" |] -> run_table2 ()
  | [| _; "table3" |] -> run_table3 ()
  | [| _; "table4" |] -> run_table4 ()
  | [| _; "table5" |] -> run_table5 ()
  | [| _; "table6" |] -> run_table6 ()
  | [| _; "fig3" |] -> run_fig3 ()
  | [| _; "fig5" |] -> run_fig5 ()
  | [| _; "demand" |] -> run_demand ()
  | [| _; "timing" |] -> run_timing ()
  | [| _; "timing"; "--json"; path |] -> run_timing ~json:path ()
  | [| _; "micro" |] -> run_micro ()
  | [| _; "ablate-aug" |] -> run_ablate_aug ()
  | [| _; "ablate-async" |] -> run_ablate_async ()
  | [| _; "ablate-pairing" |] -> run_ablate_pairing ()
  | [| _; "ablate-worklist" |] -> run_ablate_worklist ()
  | [| _; "ablate-deobf" |] -> run_ablate_deobf ()
  | [| _; "sweep" |] -> run_sweep ()
  | [| _; "ablate-intents" |] -> run_ablate_intents ()
  | _ ->
      Fmt.epr
        "usage: bench          [table1|fig6|fig7|table2|table3|table4|table5|table6|fig3|fig5|timing|micro|ablate-*]@.";
      Fmt.epr
        "       bench --baseline FILE [--threshold X] [--json OUT]   regression diff against a committed timing baseline@.";
      exit 1
