(* Build-time guard for the telemetry wiring.

   Invoked from the runtest alias with the metrics snapshot and Chrome
   trace that [extractocol --metrics-out --trace-out] wrote for the
   smallest corpus app.  Fails (exit 1) if the snapshot is missing an
   expected series or the trace is missing a phase span, so silent
   instrumentation rot breaks the build instead of the dashboards. *)

module C = Check_common
module Json = Extr_httpmodel.Json
module Pipeline = Extr_extractocol.Pipeline

let ck = C.create "metrics_check"

let required_metrics =
  [
    "slicer.demarcation_points";
    "slicer.slice_stmts";
    "taint.backward.worklist_steps";
    "taint.backward.facts";
    "taint.forward.worklist_steps";
    "interp.statements";
    "interp.transactions";
    "pairing.pairs";
    "pipeline.elapsed_seconds";
    "pipeline.transactions";
  ]

let check_metrics path =
  let json = C.load_json ck path in
  let series =
    match C.list_member "metrics" json with
    | Some l -> l
    | None ->
        C.fail ck "%s: no \"metrics\" array" path;
        []
  in
  let names = List.filter_map (C.str_member "name") series in
  List.iter
    (fun name ->
      if not (List.mem name names) then
        C.fail ck "%s: metric %S absent from snapshot" path name)
    required_metrics

let check_trace path =
  let json = C.load_json ck path in
  let events =
    match C.list_member "traceEvents" json with
    | Some l -> l
    | None ->
        C.fail ck "%s: no \"traceEvents\" array" path;
        []
  in
  let has_span name =
    List.exists
      (fun ev ->
        C.str_member "ph" ev = Some "X" && C.str_member "name" ev = Some name)
      events
  in
  List.iter
    (fun span ->
      if not (has_span span) then
        C.fail ck "%s: no complete event for span %S" path span)
    ("pipeline.analyze"
    :: List.map (fun p -> "pipeline." ^ p) Pipeline.phase_names)

let () =
  match Sys.argv with
  | [| _; metrics_path; trace_path |] ->
      check_metrics metrics_path;
      check_trace trace_path;
      C.finish ck
  | _ -> C.usage ck "METRICS.json TRACE.json"
