(* Build-time guard for the telemetry wiring.

   Invoked from the runtest alias with the metrics snapshot and Chrome
   trace that [extractocol --metrics-out --trace-out] wrote for the
   smallest corpus app.  Fails (exit 1) if the snapshot is missing an
   expected series or the trace is missing a phase span, so silent
   instrumentation rot breaks the build instead of the dashboards. *)

module Json = Extr_httpmodel.Json
module Pipeline = Extr_extractocol.Pipeline

let required_metrics =
  [
    "slicer.demarcation_points";
    "slicer.slice_stmts";
    "taint.backward.worklist_steps";
    "taint.backward.facts";
    "taint.forward.worklist_steps";
    "interp.statements";
    "interp.transactions";
    "pairing.pairs";
    "pipeline.elapsed_seconds";
    "pipeline.transactions";
  ]

let failures = ref 0

let missing fmt =
  incr failures;
  Fmt.epr ("metrics_check: " ^^ fmt ^^ "@.")

let load path =
  let src = In_channel.with_open_text path In_channel.input_all in
  match Json.of_string_opt src with
  | Some v -> v
  | None ->
      Fmt.epr "metrics_check: %s is not valid JSON@." path;
      exit 1

let str_member key obj =
  match Json.member key obj with Some (Json.Str s) -> Some s | _ -> None

let check_metrics path =
  let json = load path in
  let series =
    match Json.member "metrics" json with
    | Some (Json.List l) -> l
    | _ ->
        missing "%s: no \"metrics\" array" path;
        []
  in
  let names = List.filter_map (str_member "name") series in
  List.iter
    (fun name ->
      if not (List.mem name names) then
        missing "%s: metric %S absent from snapshot" path name)
    required_metrics

let check_trace path =
  let json = load path in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List l) -> l
    | _ ->
        missing "%s: no \"traceEvents\" array" path;
        []
  in
  let has_span name =
    List.exists
      (fun ev ->
        str_member "ph" ev = Some "X" && str_member "name" ev = Some name)
      events
  in
  List.iter
    (fun span ->
      if not (has_span span) then
        missing "%s: no complete event for span %S" path span)
    ("pipeline.analyze"
    :: List.map (fun p -> "pipeline." ^ p) Pipeline.phase_names)

let () =
  match Sys.argv with
  | [| _; metrics_path; trace_path |] ->
      check_metrics metrics_path;
      check_trace trace_path;
      if !failures > 0 then exit 1
  | _ ->
      Fmt.epr "usage: metrics_check METRICS.json TRACE.json@.";
      exit 2
