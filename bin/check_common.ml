(* Shared scaffolding for the build-time check binaries (metrics_check,
   explain_check, chaos_check, resume_check): failure accounting with a
   uniform FAIL line format, parse-or-die JSON loading, the JSON
   accessors every check needs and env-var knobs — so each check is only
   its assertions. *)

module Json = Extr_httpmodel.Json

type t = { ck_name : string; mutable ck_failures : int }

let create name = { ck_name = name; ck_failures = 0 }

(* One FAIL line per violation; the build fails in [finish]. *)
let fail t fmt =
  Fmt.kstr
    (fun s ->
      t.ck_failures <- t.ck_failures + 1;
      Fmt.epr "%s: FAIL %s@." t.ck_name s)
    fmt

(* Unrecoverable setup problem (missing file, malformed input): abort
   immediately rather than drowning it in follow-on failures. *)
let die t fmt =
  Fmt.kstr
    (fun s ->
      Fmt.epr "%s: %s@." t.ck_name s;
      exit 1)
    fmt

let usage t syntax =
  Fmt.epr "usage: %s %s@." t.ck_name syntax;
  exit 2

let read_file path = In_channel.with_open_text path In_channel.input_all

let load_json t path =
  match Json.of_string_opt (read_file path) with
  | Some v -> v
  | None -> die t "%s is not valid JSON" path

let str_member key obj =
  match Json.member key obj with Some (Json.Str s) -> Some s | _ -> None

let int_member key obj =
  match Json.member key obj with Some (Json.Int n) -> Some n | _ -> None

let list_member key obj =
  match Json.member key obj with Some (Json.List l) -> Some l | _ -> None

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Positive-integer knob from the environment (e.g. CHAOS_MUTANTS). *)
let env_int t name ~default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ -> die t "%s must be a positive integer (got %S)" name s)

(* Exit 1 iff any [fail] fired; print the ok line otherwise. *)
let finish t =
  if t.ck_failures > 0 then begin
    Fmt.epr "%s: %d failure(s)@." t.ck_name t.ck_failures;
    exit 1
  end;
  Fmt.pr "%s: ok@." t.ck_name
