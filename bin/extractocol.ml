(* The Extractocol command-line interface: analyze a corpus app (or a
   textual Limple program) and print the reconstructed HTTP transactions,
   signatures, pairings and dependency graph. *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Apk = Extr_apk.Apk
module Report = Extr_extractocol.Report
module Pipeline = Extr_extractocol.Pipeline
module Corpus = Extr_corpus.Corpus
module Spec = Extr_corpus.Spec
module Obfuscator = Extr_apk.Obfuscator
module Telemetry = Extr_telemetry
module Provenance = Extr_provenance.Provenance
module Explain = Extr_extractocol.Explain
module Resilience = Extr_resilience.Resilience
module Retry = Extr_resilience.Retry
module Fault = Extr_resilience.Fault
module Runner = Extr_eval.Runner
module Pool = Extr_eval.Pool
module Progress = Extr_eval.Progress
module Stats = Extr_eval.Stats
module Merge = Extr_eval.Merge
module Store = Extr_store.Store

open Cmdliner

(* Exit codes (documented in the man page):
     0   analysis completed cleanly
     1   usage error (unknown app, unreadable input, write failure)
     2   an app crashed behind the fault barrier (--all) and was quarantined
     3   analysis completed, but with degradations or unmatched requests
         (for `merge`: artifacts were quarantined during the merge)
     4   `merge` only: shards or apps are missing — the merge is partial
     99  an injected --crash-at kill-point fired (test hook)
     130 SIGINT/SIGTERM interrupted a corpus run (partial results printed) *)
let exit_ok = 0
let exit_usage = 1
let exit_crashed = 2
let exit_degraded = 3
let exit_partial = 4
let exit_killed = 99
let exit_interrupted = 130

let all_entries () = Corpus.case_studies () @ Corpus.table1 ()

let list_apps () =
  Fmt.pr "available corpus apps:@.";
  List.iter
    (fun (e : Corpus.entry) ->
      Fmt.pr "  %-28s (%s, %d endpoints)@." e.Corpus.c_app.Spec.a_name
        (if e.Corpus.c_app.Spec.a_closed then "closed-source" else "open-source")
        (List.length e.Corpus.c_app.Spec.a_endpoints))
    (all_entries ());
  0

let setup_logs level =
  match level with
  | None -> Telemetry.Log_setup.init ()
  | Some s -> (
      match Telemetry.Log_setup.level_of_string s with
      | Ok lvl -> Telemetry.Log_setup.init_opt lvl
      | Error msg ->
          Fmt.epr "%s@." msg;
          exit exit_usage)

(* §5.1 signature validity: match every archived request against the
   extracted signatures and report coverage. *)
let validate_trace (report : Report.t) path =
  let src = In_channel.with_open_text path In_channel.input_all in
  match Extr_httpmodel.Har.of_string src with
  | None ->
      Fmt.epr "could not parse trace archive %s@." path;
      exit_usage
  | Some trace ->
      let requests = Extr_httpmodel.Http.trace_requests trace in
      let matched, unmatched =
        List.partition
          (fun req ->
            List.exists
              (fun tr ->
                Extr_siglang.Msgsig.request_matches tr.Report.tr_request req)
              report.Report.rp_transactions)
          requests
      in
      Fmt.pr "trace %s: %d/%d requests match a signature@." trace.Extr_httpmodel.Http.tr_app
        (List.length matched)
        (List.length requests);
      List.iter
        (fun (req : Extr_httpmodel.Http.request) ->
          Fmt.pr "  unmatched: %a@." Extr_httpmodel.Http.pp_request req)
        unmatched;
      if unmatched = [] then exit_ok else exit_degraded

(* Method-level profiler artifact: the JSON (per-method rows, waste
   summary, per-phase rollup) plus the collapsed-stack FILE.folded
   companion for flamegraph tools.  [lanes] carries every tracer whose
   spans should weigh the folded stacks — the coordinator's plus, under
   --all --jobs N, one per worker. *)
let write_profile_out lanes path =
  Telemetry.Export.write_file path
    (Telemetry.Export.profile_json
       ~phases:(Telemetry.Export.phase_rollup lanes)
       Telemetry.Profile.default);
  Telemetry.Export.write_file (path ^ ".folded")
    (Telemetry.Export.folded_lanes lanes)

let print_hotspots k =
  Fmt.epr "%a" (Telemetry.Export.pp_hotspots ~k) Telemetry.Profile.default

let analyze_app name scope async intents obfuscate obf_libs limple_file json dot
    trace trace_out metrics_out profile hotspots profile_out explain
    provenance_out limits eager_cg =
  let apk =
    match limple_file with
    | Some path ->
        let src = In_channel.with_open_text path In_channel.input_all in
        let program = Extr_ir.Parser.parse_program src in
        (* No manifest on the textual path: treat every Activity subclass
           as a launchable activity so lifecycle entries exist. *)
        let activities =
          List.filter_map
            (fun (c : Ir.cls) ->
              match c.Ir.c_super with
              | Some s
                when (not c.Ir.c_library)
                     && s = Extr_semantics.Api.activity ->
                  Some c.Ir.c_name
              | Some _ | None -> None)
            program.Ir.p_classes
        in
        Apk.make ~package:"cli.input" ~activities program
    | None -> (
        match Corpus.find (all_entries ()) name with
        | Some e -> Lazy.force e.Corpus.c_apk
        | None ->
            Fmt.epr "app %S not found; use --list to enumerate@." name;
            exit exit_usage)
  in
  let apk = if obfuscate then fst (Obfuscator.obfuscate apk) else apk in
  let apk =
    if obf_libs then begin
      (* Adversarial case: obfuscate the library surface, then recover it
         with the §3.4 signature-similarity de-obfuscation. *)
      let obf, _ = Obfuscator.obfuscate_libraries apk in
      let restored, mapping = Extr_apk.Deobfuscator.deobfuscate obf in
      Fmt.pr "library de-obfuscation recovered %d classes, %d methods@."
        (List.length mapping.Extr_apk.Deobfuscator.dm_classes)
        (List.length mapping.Extr_apk.Deobfuscator.dm_methods);
      restored
    end
    else apk
  in
  let options =
    {
      Pipeline.default_options with
      Pipeline.op_scope = scope;
      op_async_heuristic = async;
      op_intents = intents;
      op_limits = limits;
      op_eager_callgraph = eager_cg;
    }
  in
  let profiling_on = hotspots <> None || profile_out <> None in
  let telemetry_on =
    trace_out <> None || metrics_out <> None || profile || profiling_on
  in
  if telemetry_on then begin
    Telemetry.Span.set_enabled Telemetry.Span.default true;
    Telemetry.Metrics.set_enabled Telemetry.Metrics.default true
  end;
  (* The method-level profiler needs the span tracer too: the folded
     export and the per-phase rollup weigh phase spans. *)
  if profiling_on then
    Telemetry.Profile.set_enabled Telemetry.Profile.default true;
  let provenance_on = explain <> None || provenance_out <> None in
  if provenance_on then Provenance.set_enabled Provenance.default true;
  let analysis = Pipeline.analyze ~options apk in
  let evidence = if provenance_on then Some (Explain.gather analysis) else None in
  let try_write write path =
    try write path
    with Sys_error msg ->
      Fmt.epr "cannot write telemetry output: %s@." msg;
      exit exit_usage
  in
  Option.iter
    (try_write (fun path ->
         Telemetry.Export.write_chrome_trace path Telemetry.Span.default))
    trace_out;
  Option.iter
    (try_write (fun path ->
         Telemetry.Export.write_metrics path Telemetry.Metrics.default))
    metrics_out;
  Option.iter
    (try_write (fun path ->
         Telemetry.Export.write_file path
           (Extr_httpmodel.Json.to_string
              (Report.to_json
                 ?provenance:(Option.map Explain.to_json evidence)
                 analysis.Pipeline.an_report))))
    provenance_out;
  if profile then begin
    Fmt.epr "%a" Telemetry.Export.pp_profile Telemetry.Span.default;
    Fmt.epr "%a@." Telemetry.Metrics.pp_summary Telemetry.Metrics.default
  end;
  Option.iter
    (try_write
       (write_profile_out [ Telemetry.Span.spans Telemetry.Span.default ]))
    profile_out;
  Option.iter print_hotspots hotspots;
  match trace with
  | Some path -> validate_trace analysis.Pipeline.an_report path
  | None -> (
      match explain with
      | Some want ->
          (* The human-readable evidence tree: statement → rule → fragment
             per transaction (all of them, or just TX_ID). *)
          let evs = Option.value evidence ~default:[] in
          let evs =
            if want < 0 then evs
            else
              List.filter
                (fun (ev : Explain.tx_evidence) ->
                  ev.Explain.ev_tx.Report.tr_id = want)
                evs
          in
          if want >= 0 && evs = [] then begin
            Fmt.epr "no transaction #%d in the report (try --explain)@." want;
            exit_usage
          end
          else begin
            List.iter
              (Fmt.pr "%a" (Explain.pp_tree analysis.Pipeline.an_prog))
              evs;
            0
          end
      | None ->
          if json then
            Fmt.pr "%s@."
              (Extr_httpmodel.Json.to_string
                 (Report.to_json
                    ?provenance:(Option.map Explain.to_json evidence)
                    analysis.Pipeline.an_report))
          else if dot then Fmt.pr "%s" (Report.to_dot analysis.Pipeline.an_report)
          else Fmt.pr "%a@." Report.pp analysis.Pipeline.an_report;
          if analysis.Pipeline.an_report.Report.rp_degradations <> [] then
            exit_degraded
          else exit_ok)

(* ------------------------------------------------------------------ *)
(* Batch mode: the whole corpus behind per-app fault isolation          *)
(* ------------------------------------------------------------------ *)

(* One summary row per app, printed live as results arrive. *)
let print_result (a : Runner.app_result) =
  let provenance =
    if a.Runner.ar_resumed then "  [resumed]"
    else if a.Runner.ar_cached then "  [cached]"
    else ""
  in
  (match a.Runner.ar_status with
  | Runner.Quarantined ->
      Fmt.pr "%-28s %-11s %5s %13s %8s %8s%s@." a.Runner.ar_app "quarantined"
        "-" "-"
        (string_of_int a.Runner.ar_attempts)
        "-" provenance
  | status ->
      Fmt.pr "%-28s %-11s %5d %13d %8d %7.2fs%s@." a.Runner.ar_app
        (Runner.status_name status) a.Runner.ar_txs
        (List.length a.Runner.ar_degradations)
        a.Runner.ar_attempts a.Runner.ar_elapsed_s provenance);
  List.iter
    (fun dg -> Fmt.pr "    %a@." Resilience.Degrade.pp_degradation dg)
    a.Runner.ar_degradations;
  Option.iter
    (fun crash ->
      Fmt.epr "%a@." Resilience.Barrier.pp_crash crash;
      if crash.Resilience.Barrier.cr_backtrace <> "" then
        Fmt.epr "%s@." crash.Resilience.Barrier.cr_backtrace)
    a.Runner.ar_crash

let parse_crash_at spec =
  let phase, occ =
    match String.index_opt spec '@' with
    | None -> (spec, "1")
    | Some i ->
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1) )
  in
  match int_of_string_opt occ with
  | Some n when n >= 1 && phase <> "" -> (phase, n)
  | _ ->
      Fmt.epr "invalid --crash-at %S (expected PHASE or PHASE@N)@." spec;
      exit exit_usage

(* The corpus a run (or a merge) covers: Table 1 plus the case studies by
   default, or --gen COUNT synthetic apps from the seeded parametric
   generator.  The corpus tag folds the generator's identity into the
   configuration fingerprint so generated-corpus journals and caches
   never mingle with the real corpus' under the same pipeline flags. *)
let corpus_of_flags gen gen_seed =
  match gen with
  | Some count ->
      ( Corpus.generated ~seed:gen_seed ~count,
        Some (Printf.sprintf "gen=%d:%d" gen_seed count) )
  | None -> (all_entries (), None)

let run_all limits force_crash journal resume cache_dir report_out crash_at
    retries jobs shard gen gen_seed metrics_out trace_out hotspots profile_out
    progress hang_timeout eager_cg =
  (* Arm the injected kill-point before anything runs: the Nth entry to
     the named pipeline phase terminates the process with exit 99,
     leaving the journal mid-run — exactly what --resume recovers from. *)
  Option.iter
    (fun spec ->
      let phase, occurrence = parse_crash_at spec in
      Resilience.Barrier.set_kill_point ~phase ~occurrence (fun () ->
          raise (Resilience.Barrier.Killed exit_killed)))
    crash_at;
  if metrics_out <> None then
    Telemetry.Metrics.set_enabled Telemetry.Metrics.default true;
  (* Workers inherit the enabled tracer across fork and ship their spans
     back with each result; the coordinator's own spans become the
     "coordinator" lane of the merged trace. *)
  if trace_out <> None then
    Telemetry.Span.set_enabled Telemetry.Span.default true;
  (* Workers inherit the enabled profiler across fork and ship their
     per-task profile deltas back with each result; the coordinator
     merges them, so the aggregate matches a --jobs 1 run exactly. *)
  if hotspots <> None || profile_out <> None then begin
    Telemetry.Profile.set_enabled Telemetry.Profile.default true;
    Telemetry.Span.set_enabled Telemetry.Span.default true
  end;
  (* SIGINT/SIGTERM unwind the run as Barrier.Interrupted: the runner
     returns the partial results, the journal is already flushed (every
     append is atomic), and we still print the table below. *)
  List.iter
    (fun s ->
      Sys.set_signal s
        (Sys.Signal_handle (fun _ -> raise Resilience.Barrier.Interrupted)))
    [ Sys.sigint; Sys.sigterm ];
  let policy =
    if retries <= 1 then Retry.no_retry
    else { Retry.default_policy with Retry.rp_max_attempts = retries }
  in
  let options =
    {
      Runner.default_options with
      Runner.ro_pipeline =
        {
          Pipeline.default_options with
          Pipeline.op_limits = limits;
          op_eager_callgraph = eager_cg;
        };
      ro_policy = policy;
      ro_journal = journal;
      ro_resume = resume;
      ro_cache_dir = cache_dir;
      ro_force_crash = force_crash;
      ro_jobs = (if jobs = 0 then Pool.default_jobs () else jobs);
      ro_shard = shard;
      ro_corpus_tag = snd (corpus_of_flags gen gen_seed);
      ro_hang_timeout = hang_timeout;
    }
  in
  let entries = fst (corpus_of_flags gen gen_seed) in
  (* The heartbeat writes to stderr (a rewriting line on a terminal,
     periodic lines otherwise); the summary table keeps stdout. *)
  let live =
    if progress then
      let mode =
        if Unix.isatty Unix.stderr then Progress.Tty else Progress.Lines
      in
      Some
        (Progress.create ~mode ~total:(List.length entries)
           ~emit:(fun s ->
             output_string stderr s;
             flush stderr)
           ())
    else None
  in
  Fmt.pr "%-28s %-11s %5s %13s %8s %8s@." "app" "status" "txs" "degradations"
    "attempts" "elapsed";
  match
    try
      Runner.run
        ~on_result:(fun r ->
          print_result r;
          Option.iter (fun p -> Progress.on_result p r) live)
        ~on_journal:(fun ev ->
          Option.iter (fun p -> Progress.on_journal p ev) live)
        ~on_state:(fun ~busy ~idle ~pending ->
          Option.iter (fun p -> Progress.on_state p ~busy ~idle ~pending) live)
        options entries
    with Resilience.Barrier.Killed n -> exit n
  with
  | Error msg ->
      Fmt.epr "%s@." msg;
      exit_usage
  | Ok run ->
      Option.iter Progress.finish live;
      let count st =
        List.length
          (List.filter (fun a -> a.Runner.ar_status = st) run.Runner.rn_results)
      in
      let cached =
        List.length
          (List.filter (fun a -> a.Runner.ar_cached) run.Runner.rn_results)
      in
      Fmt.pr "%d apps: %d ok, %d degraded, %d quarantined (%d from cache)@."
        (List.length run.Runner.rn_results)
        (count Runner.Ok) (count Runner.Degraded)
        (count Runner.Quarantined)
        cached;
      if run.Runner.rn_quarantined <> [] then
        Fmt.pr "quarantined: %s@."
          (String.concat ", " run.Runner.rn_quarantined);
      if run.Runner.rn_interrupted then
        Fmt.pr "interrupted: partial results (resume with --resume)@.";
      let try_write write path =
        try write path
        with Sys_error msg ->
          Fmt.epr "cannot write output: %s@." msg;
          exit exit_usage
      in
      Option.iter
        (try_write (fun path ->
             Telemetry.Export.write_file path
               (Runner.report_json
                  (* A shard's envelope records its shard identity; the
                     unsharded fingerprint is identical to the base, so
                     merge and plain runs share one code path. *)
                  ~config:(Runner.journal_fingerprint options)
                  run)))
        report_out;
      Option.iter
        (try_write (fun path ->
             Telemetry.Export.write_metrics path Telemetry.Metrics.default))
        metrics_out;
      (* Merged fleet trace: the coordinator's tracer on lane 0, one
         lane per worker pid in pid order.  Sequential runs simply have
         no worker lanes. *)
      Option.iter
        (try_write (fun path ->
             let lanes =
               ("coordinator", 0, Telemetry.Span.spans Telemetry.Span.default)
               :: List.mapi
                    (fun i (pid, spans) ->
                      (Printf.sprintf "worker %d" pid, i + 1, spans))
                    run.Runner.rn_worker_spans
             in
             Telemetry.Export.write_file path
               (Telemetry.Export.chrome_trace_lanes lanes)))
        trace_out;
      Option.iter
        (try_write
           (write_profile_out
              (Telemetry.Span.spans Telemetry.Span.default
              :: List.map snd run.Runner.rn_worker_spans)))
        profile_out;
      Option.iter print_hotspots hotspots;
      Runner.exit_code run

let name_arg =
  let doc = "Corpus app to analyze (see --list)." in
  Arg.(value & pos 0 string "radio reddit" & info [] ~docv:"APP" ~doc)

let list_flag =
  let doc = "List the corpus apps and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let scope_arg =
  let doc = "Restrict analysis to classes with this prefix (e.g. com.kayak)." in
  Arg.(value & opt (some string) None & info [ "scope" ] ~docv:"PREFIX" ~doc)

let async_flag =
  let doc = "Enable the asynchronous-event heuristic (default: on)." in
  Arg.(value & opt bool true & info [ "async-heuristic" ] ~doc)

let intents_flag =
  let doc =
    "Resolve intent-service dispatch with constant actions (extension:\n\
     lifts the paper's §4 limitation; off by default)."
  in
  Arg.(value & flag & info [ "intents" ] ~doc)

let obfuscate_flag =
  let doc = "ProGuard-style obfuscate the APK before analysis." in
  Arg.(value & flag & info [ "obfuscate" ] ~doc)

let obf_libs_flag =
  let doc =
    "Obfuscate the library surface, then recover it with the signature-\
     similarity de-obfuscation before analyzing (the adversarial §3.4 case)."
  in
  Arg.(value & flag & info [ "obfuscate-libraries" ] ~doc)

let json_flag =
  let doc = "Emit the report as JSON instead of the textual form." in
  Arg.(value & flag & info [ "json" ] ~doc)

let log_level_arg =
  let doc =
    "Logging level: $(b,quiet), $(b,app), $(b,error), $(b,warning),\n\
     $(b,info) or $(b,debug) (default warning).  Pipeline stages log\n\
     statement counts, slice sizes and raw transaction counts at info."
  in
  Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let dot_flag =
  let doc = "Emit the transaction dependency graph in Graphviz DOT form." in
  Arg.(value & flag & info [ "dot" ] ~doc)

let trace_arg =
  let doc =
    "Validate an archived traffic trace (fuzz_trace JSON) against the\n\
     extracted signatures instead of printing the report."
  in
  Arg.(value & opt (some file) None & info [ "trace" ] ~docv:"FILE" ~doc)

let limple_arg =
  let doc = "Analyze a textual Limple program instead of a corpus app." in
  Arg.(value & opt (some file) None & info [ "limple" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Write a Chrome trace-event JSON file of the pipeline phase spans\n\
     (open it in Perfetto or chrome://tracing).  Under $(b,--all --jobs N)\n\
     the traces of every worker process are merged into one file: the\n\
     coordinator on lane 0 and one named lane per worker pid, all on a\n\
     single time axis."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let progress_flag =
  let doc =
    "Live progress for $(b,--all) on stderr: apps done/total,\n\
     ok/degraded/quarantined/cached counts, the worker pool's\n\
     busy/idle/queued shape and an ETA.  A rewriting status line when\n\
     stderr is a terminal, periodic $(b,progress:) lines otherwise."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let metrics_out_arg =
  let doc =
    "Write a flat JSON snapshot of the telemetry metrics registry\n\
     (slicer/taint/interp/pairing counters and histograms)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let profile_flag =
  let doc = "Print a per-phase profile table (wall clock, allocation,\n\
             major GCs) and the metrics summary to stderr." in
  Arg.(value & flag & info [ "profile" ] ~doc)

let hotspots_arg =
  let doc =
    "Enable the method-level profiler and print the top-K hottest\n\
     methods (self time, budget fuel, worklist visits, facts produced,\n\
     per analysis phase) plus the per-app waste summary to stderr\n\
     after the run (default K: 20)."
  in
  Arg.(
    value
    & opt ~vopt:(Some 20) (some int) None
    & info [ "hotspots" ] ~docv:"K" ~doc)

let profile_out_arg =
  let doc =
    "Enable the method-level profiler and write its artifact to FILE:\n\
     per-method time/fuel/visits/facts rows, the per-app waste summary\n\
     and a per-phase rollup as JSON, plus a collapsed-stack\n\
     $(i,FILE).folded companion (feed it to flamegraph.pl or\n\
     speedscope).  Under $(b,--all --jobs N) the workers' per-task\n\
     profile deltas are merged so the aggregate matches a sequential\n\
     run.  $(b,extractocol stats --profile FILE) renders the artifact\n\
     offline."
  in
  Arg.(
    value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)

let explain_arg =
  let doc =
    "Print the evidence chain behind every transaction (slice steps,\n\
     taint facts, api_sem rules, signature fragments, pairing and\n\
     dependency justifications) instead of the report.  Use\n\
     $(b,--explain=TX_ID) for a single transaction."
  in
  Arg.(
    value
    & opt ~vopt:(Some (-1)) (some int) None
    & info [ "explain" ] ~docv:"TX_ID" ~doc)

let provenance_out_arg =
  let doc =
    "Write the JSON report with the per-transaction evidence chains\n\
     attached as a \"provenance\" member."
  in
  Arg.(
    value & opt (some string) None & info [ "provenance-out" ] ~docv:"FILE" ~doc)

let max_steps_arg =
  let doc =
    "Step budget shared by the taint engines and the interpreter:\n\
     every worklist iteration and interpreted statement spends one step.\n\
     Exhaustion degrades the analysis (recorded in the report) instead of\n\
     aborting it."
  in
  Arg.(
    value
    & opt int Resilience.Budget.default_limits.Resilience.Budget.bl_max_steps
    & info [ "max-steps" ] ~docv:"N" ~doc)

let max_depth_arg =
  let doc =
    "Call-inlining depth bound for the interpreter; calls beyond it are\n\
     widened to unknown (and reported as a degradation when clipping\n\
     occurs)."
  in
  Arg.(
    value
    & opt int Resilience.Budget.default_limits.Resilience.Budget.bl_max_depth
    & info [ "max-depth" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Wall-clock deadline in seconds for one app's analysis.  Polled every\n\
     4096 budget steps; exceeding it degrades the analysis (recorded in\n\
     the report) instead of aborting it."
  in
  Arg.(
    value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let all_flag =
  let doc =
    "Analyze every corpus app behind a per-app fault barrier and print a\n\
     summary table.  A crash in one app never stops the others; exit\n\
     status 2 if any app crashed, 3 if any degraded, 0 otherwise."
  in
  Arg.(value & flag & info [ "all" ] ~doc)

let force_crash_arg =
  let doc =
    "Raise an artificial exception while analyzing APP (test hook for the\n\
     $(b,--all) fault barrier and the quarantine path)."
  in
  Arg.(
    value & opt (some string) None & info [ "force-crash" ] ~docv:"APP" ~doc)

let journal_arg =
  let doc =
    "Write-ahead journal for $(b,--all): one JSONL record per per-app\n\
     state transition (started, retried, crashed, finished), appended\n\
     atomically, so a killed run can be picked up with $(b,--resume)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let resume_flag =
  let doc =
    "Replay the $(b,--journal) of a previous $(b,--all) run: apps it\n\
     marks finished are restored (from the result cache when one is\n\
     configured) instead of re-analyzed; the rest run normally.  Refused\n\
     when the journal's configuration fingerprint differs from the\n\
     current flags.  The final report is byte-identical to what the\n\
     uninterrupted run would have written."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let cache_dir_arg =
  let doc =
    "Content-addressed result cache for $(b,--all): each app's report is\n\
     stored under a digest of its Limple program, the analysis\n\
     configuration and the analysis version; a later run with an\n\
     unchanged app skips the whole pipeline and restores the cached\n\
     report (counted in the $(b,cache.hits) metric)."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let report_out_arg =
  let doc =
    "Write the corpus report envelope (per-app status, attempts, cache\n\
     provenance and the deterministic report JSON) to FILE after an\n\
     $(b,--all) run."
  in
  Arg.(
    value & opt (some string) None & info [ "report-out" ] ~docv:"FILE" ~doc)

let crash_at_arg =
  let doc =
    "Kill the process (exit 99) the Nth time the named pipeline phase\n\
     starts during an $(b,--all) run — e.g.\n\
     $(b,pipeline.interpretation@2).  Test hook for $(b,--resume): the\n\
     journal survives the kill."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "crash-at" ] ~docv:"PHASE[@N]" ~doc)

let retries_arg =
  let doc =
    "Maximum attempts per app on the degrade-and-retry ladder: an app\n\
     that degraded (budget or deadline exhausted) is re-run with\n\
     escalated limits up to this many times.  1 disables the ladder\n\
     (including the crash retry)."
  in
  Arg.(
    value
    & opt int Retry.default_policy.Retry.rp_max_attempts
    & info [ "retries" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker processes for $(b,--all): corpus apps are analyzed in\n\
     parallel, one per forked worker, with results reported in corpus\n\
     order (the report is byte-identical to a sequential run).  0 (the\n\
     default) uses the machine's available parallelism; 1 runs\n\
     sequentially in-process."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let shard_conv =
  let parse s =
    let bad () =
      Error (`Msg (Printf.sprintf "invalid shard %S (expected K/N)" s))
    in
    match String.index_opt s '/' with
    | None -> bad ()
    | Some i -> (
        match
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt
              (String.sub s (i + 1) (String.length s - i - 1)) )
        with
        | Some k, Some n -> Ok (k, n)
        | _ -> bad ())
  in
  Arg.conv (parse, fun ppf (k, n) -> Format.fprintf ppf "%d/%d" k n)

let shard_arg =
  let doc =
    "Run only the K-th of N deterministic corpus slices under $(b,--all)\n\
     (1-based).  The partition hashes app names, so every shard computes\n\
     exactly what the unsharded run would for its apps: cache entries\n\
     carry the same keys and N shard runs can be folded back into the\n\
     unsharded report with $(b,extractocol merge).  The journal header\n\
     records the shard identity — a shard only resumes its own journal."
  in
  Arg.(
    value
    & opt (some shard_conv) None
    & info [ "shard" ] ~docv:"K/N" ~doc)

let gen_arg =
  let doc =
    "Replace the built-in corpus with COUNT synthetic apps from the\n\
     seeded parametric generator (sampling sizes, method mixes,\n\
     open/closed split and obfuscation from Table-1-like distributions).\n\
     Deterministic: the same $(b,--gen-seed) always produces the same\n\
     corpus, and the configuration fingerprint records it as\n\
     $(i,gen=SEED:COUNT) so generated-corpus journals and caches never\n\
     mix with the real corpus'."
  in
  Arg.(value & opt (some int) None & info [ "gen" ] ~docv:"COUNT" ~doc)

let gen_seed_arg =
  let doc = "Seed for the $(b,--gen) corpus generator." in
  Arg.(value & opt int 1 & info [ "gen-seed" ] ~docv:"SEED" ~doc)

let eager_callgraph_flag =
  let doc =
    "Escape hatch: build the whole-program call graph up front instead\n\
     of resolving it demand-driven from the method index.  The report is\n\
     byte-identical either way (and cache entries are shared across the\n\
     two modes); this only trades analysis speed for the historical\n\
     eager construction, e.g. to compare timings."
  in
  Arg.(value & flag & info [ "eager-callgraph" ] ~doc)

let hang_timeout_arg =
  let doc =
    "Arm the hung-worker watchdog for $(b,--all --jobs N): a worker\n\
     silent (no heartbeat, event or result) for longer than this many\n\
     seconds is killed, its app retried once on a fresh worker, then\n\
     quarantined under the $(i,hung\\@PHASE) crash taxonomy.  Off by\n\
     default."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "hang-timeout" ] ~docv:"SECONDS" ~doc)

let inject_arg =
  let doc =
    "Inject an environment fault at a named site (repeatable):\n\
     $(i,SITE[\\@N][:MODE]) arms the Nth (default first) hit of\n\
     $(i,SITE) with $(i,MODE) — e.g.\n\
     $(b,export.write:enospc), $(b,journal.append\\@3:torn),\n\
     $(b,store.read:bitflip), $(b,pool.frame), or\n\
     $(b,worker.spin:APP) to wedge the worker analyzing $(i,APP).\n\
     Test hook; the $(b,EXTRACTOCOL_INJECT) environment variable takes\n\
     the same comma-separated specs."
  in
  Arg.(
    value & opt_all string [] & info [ "inject" ] ~docv:"SPEC" ~doc)

let arm_injections specs =
  List.iter
    (fun spec ->
      match Fault.arm_spec spec with
      | Ok () -> ()
      | Error msg ->
          Fmt.epr "invalid --inject %S: %s@." spec msg;
          exit exit_usage)
    specs

let exits =
  [
    Cmd.Exit.info exit_ok ~doc:"the analysis completed cleanly.";
    Cmd.Exit.info exit_usage
      ~doc:
        "usage error: unknown app, unreadable input file, or a telemetry \
         output could not be written.";
    Cmd.Exit.info exit_crashed
      ~doc:
        "at least one app crashed behind the $(b,--all) fault barrier, was \
         retried, and crashed again — it is quarantined (the crash taxonomy \
         is printed to stderr).";
    Cmd.Exit.info exit_degraded
      ~doc:
        "the analysis completed but degraded: a budget or deadline tripped \
         (see the report's degradations), or $(b,--trace) left requests \
         unmatched; for $(b,merge), artifacts (an unreadable journal, a \
         corrupt cache entry) were quarantined during the merge.";
    Cmd.Exit.info exit_partial
      ~doc:
        "$(b,merge) only: the merge is partial — expected shards or corpus \
         apps are missing (listed in the envelope's $(i,missing_shards[]) / \
         $(i,missing_apps[]) members).";
    Cmd.Exit.info exit_killed
      ~doc:"an injected $(b,--crash-at) kill-point fired (test hook).";
    Cmd.Exit.info exit_interrupted
      ~doc:
        "SIGINT/SIGTERM stopped an $(b,--all) run; the journal was flushed \
         and the partial summary table printed — re-run with $(b,--resume) \
         to finish.";
  ]

let analyze_term =
  Term.(
    const
      (fun log_level list name scope async intents obf obf_libs limple json
           dot trace trace_out metrics_out profile hotspots profile_out
           explain provenance_out max_steps max_depth deadline all force_crash
           journal resume cache_dir report_out crash_at retries jobs shard gen
           gen_seed progress hang_timeout eager_cg inject ->
        setup_logs log_level;
        arm_injections inject;
        let limits =
          {
            Resilience.Budget.bl_max_steps = max_steps;
            bl_max_depth = max_depth;
            bl_deadline_s = deadline;
          }
        in
        if list then list_apps ()
        else if all then
          run_all limits force_crash journal resume cache_dir report_out
            crash_at retries jobs shard gen gen_seed metrics_out trace_out
            hotspots profile_out progress hang_timeout eager_cg
        else
          analyze_app name scope async intents obf obf_libs limple json dot
            trace trace_out metrics_out profile hotspots profile_out explain
            provenance_out limits eager_cg)
    $ log_level_arg $ list_flag $ name_arg $ scope_arg $ async_flag
    $ intents_flag $ obfuscate_flag $ obf_libs_flag $ limple_arg $ json_flag
    $ dot_flag $ trace_arg $ trace_out_arg $ metrics_out_arg $ profile_flag
    $ hotspots_arg $ profile_out_arg $ explain_arg $ provenance_out_arg
    $ max_steps_arg $ max_depth_arg $ deadline_arg $ all_flag
    $ force_crash_arg $ journal_arg $ resume_flag $ cache_dir_arg
    $ report_out_arg $ crash_at_arg $ retries_arg $ jobs_arg $ shard_arg
    $ gen_arg $ gen_seed_arg $ progress_flag $ hang_timeout_arg
    $ eager_callgraph_flag $ inject_arg)

(* ------------------------------------------------------------------ *)
(* stats: offline run reconstruction from artifacts                    *)
(* ------------------------------------------------------------------ *)

let run_stats log_level journals cache_dir metrics profile verify =
  setup_logs log_level;
  if verify then begin
    (* Integrity audit, not reconstruction: re-verify every journal
       record's checksum and every cache entry's content digest. *)
    let r = Stats.verify ~journals ?cache_dir () in
    Fmt.pr "%a" Stats.pp_verify r;
    if Stats.verify_clean r then exit_ok else exit_degraded
  end
  else
    match Stats.of_artifacts ~journals ?cache_dir ?metrics ?profile () with
    | Error msg ->
        Fmt.epr "%s@." msg;
        exit_usage
    | Ok t ->
        Fmt.pr "%a" Stats.pp t;
        exit_ok

let stats_cmd =
  let doc =
    "reconstruct an $(b,--all) run's report from its artifacts alone"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads the write-ahead journal a previous (possibly killed, \
         possibly still running) $(b,--all) run left behind and prints \
         the run's story without re-running anything: the summary \
         footer, per-app wall times and the slowest apps, the \
         retry-ladder and crash taxonomies, and the cache hit rate.  \
         With $(b,--metrics), per-phase latency percentiles \
         (p50/p95/p99) from the metrics snapshot are appended; with \
         $(b,--profile), the hot-method table and the per-app waste \
         summary from the $(b,--profile-out) artifact.  The journal is \
         opened read-only and never truncated.";
    ]
  in
  let journal =
    let doc =
      "The $(b,--journal) file of the run to reconstruct.  Repeatable:\n\
       several journals (a $(b,--shard) set) pool into one fleet-wide\n\
       view — shard suffixes are stripped from the configuration\n\
       fingerprints (which must share a base) and events merge in stamp\n\
       order."
    in
    Arg.(
      non_empty & opt_all string [] & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let cache_dir =
    let doc =
      "The run's $(b,--cache-dir); adds the number of results on disk."
    in
    Arg.(
      value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let metrics =
    let doc =
      "The run's $(b,--metrics-out) snapshot; adds the per-phase\n\
       p50/p95/p99 latency table."
    in
    Arg.(
      value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let profile =
    let doc =
      "The run's $(b,--profile-out) artifact; adds the hot-method table\n\
       and the per-app waste summary."
    in
    Arg.(
      value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)
  in
  let verify =
    let doc =
      "Audit artifact integrity instead of reconstructing the run:\n\
       re-verify every journal record's checksum and (with\n\
       $(b,--cache-dir)) every cache entry's content digest.  Exits 0\n\
       when everything checks out, 3 when corruption was found."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  Cmd.v
    (Cmd.info "stats" ~doc ~man ~exits)
    Term.(
      const run_stats $ log_level_arg $ journal $ cache_dir $ metrics
      $ profile $ verify)

(* ------------------------------------------------------------------ *)
(* merge: union sharded --all artifacts offline                        *)
(* ------------------------------------------------------------------ *)

let run_merge log_level journals cache_dirs metrics_ins expect_shards
    max_steps max_depth deadline retries gen gen_seed report_out journal_out
    cache_out metrics_out =
  setup_logs log_level;
  if metrics_out <> None && metrics_ins = [] then begin
    Fmt.epr "--metrics-out needs at least one --metrics snapshot to merge@.";
    exit exit_usage
  end;
  let limits =
    {
      Resilience.Budget.bl_max_steps = max_steps;
      bl_max_depth = max_depth;
      bl_deadline_s = deadline;
    }
  in
  let policy =
    if retries <= 1 then Retry.no_retry
    else { Retry.default_policy with Retry.rp_max_attempts = retries }
  in
  let entries, corpus_tag = corpus_of_flags gen gen_seed in
  let options =
    {
      Runner.default_options with
      Runner.ro_pipeline =
        { Pipeline.default_options with Pipeline.op_limits = limits };
      ro_policy = policy;
      ro_corpus_tag = corpus_tag;
    }
  in
  match Merge.merge ~options ~entries ~journals ~cache_dirs ?expect_shards ()
  with
  | Error msg ->
      Fmt.epr "%s@." msg;
      exit_usage
  | Ok t ->
      let try_write write path =
        try write path
        with Sys_error msg ->
          Fmt.epr "cannot write merge output: %s@." msg;
          exit exit_usage
      in
      Option.iter
        (try_write (fun path ->
             Telemetry.Export.write_file path (Merge.report_json t)))
        report_out;
      Option.iter
        (try_write (fun path ->
             Telemetry.Export.write_file path (Merge.journal_contents t)))
        journal_out;
      Option.iter
        (try_write (fun dir ->
             let store = Store.open_ ~dir () in
             List.iter
               (fun (key, data) ->
                 match Store.key_of_string key with
                 | Some k -> Store.store store k data
                 | None -> ())
               t.Merge.mg_cache))
        cache_out;
      Option.iter
        (try_write (fun path ->
             match Merge.merge_metrics metrics_ins with
             | Ok doc -> Telemetry.Export.write_file path doc
             | Error msg ->
                 Fmt.epr "%s@." msg;
                 exit exit_usage))
        metrics_out;
      let results = t.Merge.mg_run.Runner.rn_results in
      let count st =
        List.length
          (List.filter (fun a -> a.Runner.ar_status = st) results)
      in
      Fmt.pr "merged %d journal%s: %d/%d apps (%d ok, %d degraded, %d \
              quarantined)@."
        (List.length journals)
        (if List.length journals = 1 then "" else "s")
        (List.length results) t.Merge.mg_expected (count Runner.Ok)
        (count Runner.Degraded)
        (count Runner.Quarantined);
      if t.Merge.mg_missing_shards <> [] then
        Fmt.pr "missing shards: %s@."
          (String.concat ", "
             (List.map string_of_int t.Merge.mg_missing_shards));
      if t.Merge.mg_missing_apps <> [] then
        Fmt.pr "missing apps: %s@."
          (String.concat ", " t.Merge.mg_missing_apps);
      List.iter
        (fun (d : Merge.degradation) ->
          Fmt.epr "merge degradation: %s%s (%s)@."
            (if d.Merge.md_app = "" then "" else d.Merge.md_app ^ ": ")
            d.Merge.md_reason d.Merge.md_detail)
        t.Merge.mg_degradations;
      Merge.exit_code t

let merge_cmd =
  let doc = "union sharded $(b,--all) artifacts into one corpus report" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Folds the journals (and optionally cache directories and metrics \
         snapshots) that N $(b,--shard K/N) runs left behind into the \
         artifacts one unsharded run would have produced: the \
         $(b,--report-out) envelope is byte-identical to $(b,--all --jobs \
         1)'s when every shard is present and healthy.  The merge is \
         idempotent — overlapping shards, duplicated work and re-merging \
         its own outputs resolve newest-finished-wins by journal stamp — \
         and corruption never aborts it: unreadable journals and \
         truncated cache entries are quarantined into the envelope's \
         $(i,merge_degradations[]) (exit 3), while absent shards and \
         unaccounted apps are listed in $(i,missing_shards[]) / \
         $(i,missing_apps[]) (exit 4).  Inputs are opened read-only, so \
         merging a still-running shard's artifacts is safe.  The \
         pipeline, retry and $(b,--gen) flags must repeat the shard \
         runs' — a journal written under a different configuration \
         fingerprint is refused.";
    ]
  in
  let journals =
    let doc =
      "A shard's $(b,--journal) file.  Repeatable, one per shard; later \
       files win stamp ties."
    in
    Arg.(
      non_empty & opt_all string [] & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let cache_dirs =
    let doc =
      "A shard's $(b,--cache-dir).  Repeatable; searched in order for \
       each app's report, skipping corrupt copies."
    in
    Arg.(value & opt_all string [] & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let metrics_ins =
    let doc =
      "A shard's $(b,--metrics-out) snapshot.  Repeatable; unioned into \
       $(b,--metrics-out) (counters add, gauges take the max, histogram \
       buckets add slot-wise)."
    in
    Arg.(value & opt_all string [] & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let expect_shards =
    let doc =
      "Require journals from all N shards; absent ones are reported as \
       $(i,missing_shards[]) (exit 4).  Default: the largest N the \
       journals' own shard identities declare."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "expect-shards" ] ~docv:"N" ~doc)
  in
  let report_out =
    let doc =
      "Write the merged corpus report envelope to FILE (atomically)."
    in
    Arg.(
      value & opt (some string) None & info [ "report-out" ] ~docv:"FILE" ~doc)
  in
  let journal_out =
    let doc =
      "Write the merged journal to FILE: readable by $(b,stats), \
       $(b,--resume) and a further $(b,merge) exactly like a \
       runner-written journal."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-out" ] ~docv:"FILE" ~doc)
  in
  let cache_out =
    let doc =
      "Copy the unioned cache entries into DIR (created if needed); keys \
       are unchanged, so a $(b,--resume) against the merged journal can \
       restore every report from it."
    in
    Arg.(
      value & opt (some string) None & info [ "cache-out" ] ~docv:"DIR" ~doc)
  in
  let metrics_out =
    let doc = "Write the unioned metrics snapshot to FILE." in
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "merge" ~doc ~man ~exits)
    Term.(
      const run_merge $ log_level_arg $ journals $ cache_dirs $ metrics_ins
      $ expect_shards $ max_steps_arg $ max_depth_arg $ deadline_arg
      $ retries_arg $ gen_arg $ gen_seed_arg $ report_out $ journal_out
      $ cache_out $ metrics_out)

let doc = "reconstruct HTTP transactions from an Android app binary"

let cmd =
  let info = Cmd.info "extractocol" ~version:"1.0" ~doc ~exits in
  Cmd.group ~default:analyze_term info [ stats_cmd; merge_cmd ]

(* A positional that is not a subcommand name is a corpus app:
   [extractocol kayak --hotspots].  Cmd.group would reject it as an
   unknown command, so route those invocations straight to the analyze
   term; everything else (no args, options only, [stats ...]) goes
   through the group so subcommands and group help keep working. *)
let analyze_cmd =
  Cmd.v (Cmd.info "extractocol" ~version:"1.0" ~doc ~exits) analyze_term

let () =
  (* EXTRACTOCOL_INJECT: the fault-injection env channel, so the check
     binaries can arm faults in a child extractocol without rebuilding
     its command line. *)
  Fault.init_from_env ();
  let positional_app =
    Array.length Sys.argv > 1
    && String.length Sys.argv.(1) > 0
    && Sys.argv.(1).[0] <> '-'
    && Sys.argv.(1) <> "stats"
    && Sys.argv.(1) <> "merge"
  in
  exit (Cmd.eval' (if positional_app then analyze_cmd else cmd))
