(* Run a dynamic UI-fuzzing baseline (§5.1) against a corpus app and dump
   the captured traffic trace as JSON (the mitmproxy-dump analogue).

   Usage: fuzz_trace APP [--policy auto|manual|full] *)

module Http = Extr_httpmodel.Http
module Har = Extr_httpmodel.Har
module Corpus = Extr_corpus.Corpus
module Fuzz = Extr_fuzz.Fuzz

open Cmdliner

let setup_logs level =
  match level with
  | None -> Extr_telemetry.Log_setup.init ()
  | Some s -> (
      match Extr_telemetry.Log_setup.level_of_string s with
      | Ok lvl -> Extr_telemetry.Log_setup.init_opt lvl
      | Error msg ->
          Fmt.epr "%s@." msg;
          exit 2)

let run_fuzz log_level name policy summary =
  setup_logs log_level;
  let entries = Corpus.case_studies () @ Corpus.table1 () in
  match Corpus.find entries name with
  | None ->
      Fmt.epr "app %S not found@." name;
      2
  | Some e ->
      let apk = Lazy.force e.Corpus.c_apk in
      let trace = Fuzz.run e.Corpus.c_app apk ~policy in
      if summary then begin
        Fmt.pr "%s: %s policy, %d transactions, endpoints:@." name
          (Fuzz.policy_name policy)
          (List.length trace.Http.tr_entries);
        List.iter (Fmt.pr "  %s@.") (Fuzz.observed_endpoints trace);
        0
      end
      else begin
        print_endline (Har.to_string trace);
        0
      end

let policy_conv =
  let parse = function
    | "auto" -> Ok `Auto
    | "manual" -> Ok `Manual
    | "full" -> Ok `Full
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  let print fmt p = Fmt.string fmt (Fuzz.policy_name p) in
  Arg.conv (parse, print)

let name_arg =
  let doc = "Corpus app to fuzz." in
  Arg.(value & pos 0 string "radio reddit" & info [] ~docv:"APP" ~doc)

let policy_arg =
  let doc = "Fuzzing policy: auto (PUMA analogue), manual, or full." in
  Arg.(value & opt policy_conv `Manual & info [ "policy" ] ~docv:"POLICY" ~doc)

let summary_flag =
  let doc = "Print a summary instead of the JSON dump." in
  Arg.(value & flag & info [ "summary" ] ~doc)

let log_level_arg =
  let doc =
    "Logging level: $(b,quiet), $(b,app), $(b,error), $(b,warning),\n\
     $(b,info) or $(b,debug) (default warning)."
  in
  Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let cmd =
  let doc = "capture an app's traffic under a UI-fuzzing policy" in
  let info = Cmd.info "fuzz_trace" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(const run_fuzz $ log_level_arg $ name_arg $ policy_arg $ summary_flag)

let () = exit (Cmd.eval' cmd)
