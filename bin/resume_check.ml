(* Build-time guard for the durability layer: drive the real CLI through
   the kill → resume → cold → warm-cache lifecycle and the --all
   exit-code contract.

   1. A corpus run is killed mid-flight by an injected kill-point
      (--crash-at, exit 99), leaving a partial journal and cache.
   2. --resume finishes it; its report envelope must be BYTE-identical
      to the one an uninterrupted run writes.
   3. A warm-cache re-run must restore every app from the cache
      (cache.hits == app count, no misses, every envelope entry
      "cached": true) without running any pipeline phase.
   4. --force-crash must quarantine the app and exit 2; a starved run
      with the ladder disabled must exit 3.

   Invoked from the runtest alias with the extractocol binary's path;
   all intermediate state lives in a private temp directory. *)

module C = Check_common
module Json = Extr_httpmodel.Json

let ck = C.create "resume_check"

let bool_member key obj =
  match Json.member key obj with Some (Json.Bool b) -> Some b | _ -> None

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let check exe =
  (* Dune passes the binary as a bare relative name; qualify it so the
     shell execs it instead of searching PATH. *)
  let exe =
    if Filename.is_relative exe then Filename.concat (Sys.getcwd ()) exe
    else exe
  in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "resume_check.%d" (Unix.getpid ()))
  in
  Sys.mkdir tmp 0o755;
  let p name = Filename.concat tmp name in
  (* Run the CLI, demand the expected exit code, return its output. *)
  let run_cli ~expect label args =
    let out = p (label ^ ".out") in
    let code =
      Sys.command (Filename.quote_command exe args ~stdout:out ~stderr:out)
    in
    if code <> expect then
      C.fail ck "%s run exited %d, expected %d (see %s)" label code expect out;
    C.read_file out
  in
  (* Everything here pins --jobs 1: this guard checks the sequential
     lifecycle (pool_check covers the parallel one), and kill-point
     occurrence counts are per-process — under a pool each worker
     counts its own phases, so "the 2nd interpretation phase" would
     name a different app. *)
  (* 1: kill mid-run — the 2nd interpretation phase never returns. *)
  let _ =
    run_cli ~expect:99 "killed"
      [
        "--all"; "--jobs"; "1"; "--journal"; p "journal.jsonl"; "--cache-dir";
        p "cache"; "--crash-at"; "pipeline.interpretation@2";
      ]
  in
  (* 2: resume it, and 3: run the same corpus uninterrupted. *)
  let resumed_out =
    run_cli ~expect:0 "resumed"
      [
        "--all"; "--jobs"; "1"; "--resume"; "--journal"; p "journal.jsonl";
        "--cache-dir"; p "cache"; "--report-out"; p "resumed.json";
      ]
  in
  if not (C.contains ~needle:"[resumed]" resumed_out) then
    C.fail ck "resumed run restored nothing from the journal";
  let _ =
    run_cli ~expect:0 "cold"
      [
        "--all"; "--jobs"; "1"; "--journal"; p "cold-journal.jsonl";
        "--cache-dir"; p "cold-cache"; "--report-out"; p "cold.json";
      ]
  in
  let resumed = C.read_file (p "resumed.json") in
  let cold = C.read_file (p "cold.json") in
  if not (String.equal resumed cold) then
    C.fail ck
      "resumed report is not byte-identical to the uninterrupted run's (%s vs %s)"
      (p "resumed.json") (p "cold.json");
  (* 3: warm-cache re-run over the cold run's cache. *)
  let _ =
    run_cli ~expect:0 "warm"
      [
        "--all"; "--jobs"; "1"; "--cache-dir"; p "cold-cache"; "--report-out";
        p "warm.json"; "--metrics-out"; p "metrics.json";
      ]
  in
  let apps =
    match C.list_member "apps" (C.load_json ck (p "warm.json")) with
    | Some l -> l
    | None ->
        C.fail ck "warm report has no \"apps\" array";
        []
  in
  List.iter
    (fun app ->
      if bool_member "cached" app <> Some true then
        C.fail ck "warm run re-analyzed %s instead of using the cache"
          (Option.value (C.str_member "app" app) ~default:"?"))
    apps;
  let samples =
    match C.list_member "metrics" (C.load_json ck (p "metrics.json")) with
    | Some l -> l
    | None ->
        C.fail ck "warm metrics snapshot has no \"metrics\" array";
        []
  in
  let count name =
    List.fold_left
      (fun acc s ->
        if C.str_member "name" s = Some name then
          acc + Option.value (C.int_member "count" s) ~default:0
        else acc)
      0 samples
  in
  if count "cache.hits" <> List.length apps then
    C.fail ck "warm run: cache.hits = %d, expected one per app (%d)"
      (count "cache.hits") (List.length apps);
  if count "cache.misses" <> 0 then
    C.fail ck "warm run: %d cache.misses on a fully warm cache"
      (count "cache.misses");
  (* 4: the exit-code contract — quarantine (2) and degraded (3). *)
  let quarantine_out =
    run_cli ~expect:2 "quarantined"
      [
        "--all"; "--jobs"; "1"; "--cache-dir"; p "cold-cache"; "--force-crash";
        "radio reddit";
      ]
  in
  if not (C.contains ~needle:"quarantined: radio reddit" quarantine_out) then
    C.fail ck "force-crashed app missing from the quarantine list";
  let _ =
    run_cli ~expect:3 "degraded"
      [ "--all"; "--jobs"; "1"; "--max-steps"; "500"; "--retries"; "1" ]
  in
  if ck.C.ck_failures = 0 then remove_tree tmp
  else Fmt.epr "resume_check: intermediate state kept in %s@." tmp

let () =
  match Sys.argv with
  | [| _; exe |] ->
      check exe;
      C.finish ck
  | _ -> C.usage ck "EXTRACTOCOL_BINARY"
