(* End-to-end smoke test: a tiny hand-built app in the style of the
   paper's Figure 3 (Diode) — StringBuilder URI construction with
   branches, an Apache HttpClient demarcation point, and JSON response
   parsing — must yield a transaction with the right URI regex, body
   signature, and pairing. *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Api = Extr_semantics.Api
module Apk = Extr_apk.Apk
module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Msgsig = Extr_siglang.Msgsig
module Strsig = Extr_siglang.Strsig
module Regex = Extr_siglang.Regex

let cls = "com.example.Main"

(* onCreate: builds a URI with a branch, fires the request, parses JSON. *)
let on_create =
  B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
      let sb = B.new_obj b Api.string_builder [ B.vstr "http://api.example.com/items" ] in
      let cond = B.define b Ir.Bool (Ir.Val (B.vbool true)) in
      B.ite b (B.vl cond)
        (fun b ->
          B.call b
            (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
               "append"
               [ B.vstr "/popular.json?limit=" ]))
        (fun b ->
          B.call b
            (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder
               "append"
               [ B.vstr "/new.json?limit=" ]));
      let count = B.define b Ir.Int (Ir.Val (B.vint 25)) in
      let count_str =
        B.call_ret b Ir.Str
          (B.static_call ~ret:Ir.Str Api.java_string "valueOf" [ B.vl count ])
      in
      B.call b
        (B.virtual_call ~ret:(Ir.Obj Api.string_builder) sb Api.string_builder "append"
           [ B.vl count_str ]);
      let url =
        B.call_ret b Ir.Str
          (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
      in
      let req = B.new_obj b Api.http_get [ B.vl url ] in
      let client = B.new_obj b Api.default_http_client [] in
      let resp =
        B.call_ret b (Ir.Obj Api.http_response)
          (B.virtual_call ~ret:(Ir.Obj Api.http_response) client Api.http_client
             "execute" [ B.vl req ])
      in
      let entity =
        B.call_ret b (Ir.Obj Api.http_entity)
          (B.virtual_call ~ret:(Ir.Obj Api.http_entity) resp Api.http_response
             "getEntity" [])
      in
      let body =
        B.call_ret b Ir.Str
          (B.static_call ~ret:Ir.Str Api.entity_utils "toString" [ B.vl entity ])
      in
      let json = B.new_obj b Api.json_object [ B.vl body ] in
      let title =
        B.call_ret b Ir.Str
          (B.virtual_call ~ret:Ir.Str json Api.json_object "getString"
             [ B.vstr "title" ])
      in
      ignore title;
      B.return_void b)

let apk =
  let main = B.mk_cls ~super:Api.activity cls [ on_create ] in
  let program = { Ir.p_classes = [ main ]; p_entries = [] } in
  Apk.make ~package:"com.example" ~activities:[ cls ] program

(* Analyze the hand-built app and check the expected shape: exactly one
   GET transaction whose URI regex matches both branch spellings.  Exits
   non-zero on mismatch so the binary doubles as a smoke test. *)
let () =
  (* No cmdliner here; the only option is --log-level LEVEL. *)
  (match Array.to_list Sys.argv with
  | _ :: "--log-level" :: lvl :: _ -> (
      match Extr_telemetry.Log_setup.level_of_string lvl with
      | Ok l -> Extr_telemetry.Log_setup.init_opt l
      | Error msg ->
          Fmt.epr "%s@." msg;
          exit 2)
  | _ -> Extr_telemetry.Log_setup.init ~level:Logs.Info ());
  let analysis = Pipeline.analyze apk in
  let report = analysis.Pipeline.an_report in
  Fmt.pr "%a@." Report.pp report;
  match report.Report.rp_transactions with
  | [ tr ] ->
      let regex = Strsig.to_regex tr.Report.tr_request.Msgsig.rs_uri in
      let ok =
        tr.Report.tr_request.Msgsig.rs_meth = Extr_httpmodel.Http.GET
        && Regex.string_matches ~pattern:regex
             "http://api.example.com/items/popular.json?limit=25"
        && Regex.string_matches ~pattern:regex
             "http://api.example.com/items/new.json?limit=25"
      in
      if not ok then begin
        Fmt.epr "unexpected transaction shape: %s@." regex;
        exit 1
      end
  | txs ->
      Fmt.epr "expected exactly one transaction, got %d@." (List.length txs);
      exit 1

