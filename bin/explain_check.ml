(* Build-time guard for the provenance wiring.

   Invoked from the runtest alias with the report JSON that
   [extractocol --provenance-out] wrote for the smallest corpus app,
   plus the text of [--explain].  Fails (exit 1) if the export does not
   parse, a reported transaction has no evidence record, an evidence
   chain is empty, or a chain's statement ids do not look like resolved
   Limple positions — so a provenance regression breaks the build
   instead of the --explain output. *)

module Json = Extr_httpmodel.Json

let failures = ref 0

let broken fmt =
  incr failures;
  Fmt.epr ("explain_check: " ^^ fmt ^^ "@.")

let load path =
  let src = In_channel.with_open_text path In_channel.input_all in
  match Json.of_string_opt src with
  | Some v -> v
  | None ->
      Fmt.epr "explain_check: %s is not valid JSON@." path;
      exit 1

let int_member key obj =
  match Json.member key obj with Some (Json.Int n) -> Some n | _ -> None

let list_member key obj =
  match Json.member key obj with Some (Json.List l) -> Some l | _ -> None

(* "cls.meth:idx" — the shape Stmt_id.to_string produces for a resolved
   statement. *)
let looks_like_stmt_id s =
  match String.rindex_opt s ':' with
  | None -> false
  | Some i -> (
      i > 0
      && i < String.length s - 1
      && match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
         | Some n -> n >= 0
         | None -> false)

let check_provenance path =
  let json = load path in
  let txs =
    match list_member "transactions" json with
    | Some l -> l
    | None ->
        broken "%s: no \"transactions\" array" path;
        []
  in
  let prov =
    match list_member "provenance" json with
    | Some l -> l
    | None ->
        broken "%s: no \"provenance\" array" path;
        []
  in
  if List.length prov <> List.length txs then
    broken "%s: %d transactions but %d evidence records" path
      (List.length txs) (List.length prov);
  let covered =
    List.filter_map (fun ev -> int_member "tx" ev) prov
  in
  List.iter
    (fun tx ->
      match int_member "id" tx with
      | None -> broken "%s: transaction without an id" path
      | Some id ->
          if not (List.mem id covered) then
            broken "%s: transaction #%d has no evidence record" path id)
    txs;
  List.iter
    (fun ev ->
      let id =
        match int_member "tx" ev with Some n -> n | None -> -1
      in
      match list_member "slice" ev with
      | None | Some [] ->
          broken "%s: transaction #%d has an empty slice chain" path id
      | Some steps ->
          List.iter
            (fun step ->
              match Json.member "stmt" step with
              | Some (Json.Str s) when looks_like_stmt_id s -> ()
              | Some (Json.Str s) ->
                  broken "%s: #%d slice step has malformed statement id %S"
                    path id s
              | _ -> broken "%s: #%d slice step without a statement id" path id)
            steps)
    prov

let check_explain path =
  let text = In_channel.with_open_text path In_channel.input_all in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  if not (contains "demarcation point:") then
    broken "%s: --explain output has no demarcation-point line" path;
  if contains "<unresolved>" then
    broken "%s: --explain output contains unresolved statement ids" path

let () =
  match Sys.argv with
  | [| _; provenance_path; explain_path |] ->
      check_provenance provenance_path;
      check_explain explain_path;
      if !failures > 0 then exit 1
  | _ ->
      Fmt.epr "usage: explain_check PROVENANCE.json EXPLAIN.txt@.";
      exit 2
