(* Build-time guard for the provenance wiring.

   Invoked from the runtest alias with the report JSON that
   [extractocol --provenance-out] wrote for the smallest corpus app,
   plus the text of [--explain].  Fails (exit 1) if the export does not
   parse, a reported transaction has no evidence record, an evidence
   chain is empty, or a chain's statement ids do not look like resolved
   Limple positions — so a provenance regression breaks the build
   instead of the --explain output. *)

module C = Check_common
module Json = Extr_httpmodel.Json

let ck = C.create "explain_check"

(* "cls.meth:idx" — the shape Stmt_id.to_string produces for a resolved
   statement. *)
let looks_like_stmt_id s =
  match String.rindex_opt s ':' with
  | None -> false
  | Some i -> (
      i > 0
      && i < String.length s - 1
      && match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
         | Some n -> n >= 0
         | None -> false)

let check_provenance path =
  let json = C.load_json ck path in
  let txs =
    match C.list_member "transactions" json with
    | Some l -> l
    | None ->
        C.fail ck "%s: no \"transactions\" array" path;
        []
  in
  let prov =
    match C.list_member "provenance" json with
    | Some l -> l
    | None ->
        C.fail ck "%s: no \"provenance\" array" path;
        []
  in
  if List.length prov <> List.length txs then
    C.fail ck "%s: %d transactions but %d evidence records" path
      (List.length txs) (List.length prov);
  let covered = List.filter_map (fun ev -> C.int_member "tx" ev) prov in
  List.iter
    (fun tx ->
      match C.int_member "id" tx with
      | None -> C.fail ck "%s: transaction without an id" path
      | Some id ->
          if not (List.mem id covered) then
            C.fail ck "%s: transaction #%d has no evidence record" path id)
    txs;
  List.iter
    (fun ev ->
      let id = match C.int_member "tx" ev with Some n -> n | None -> -1 in
      match C.list_member "slice" ev with
      | None | Some [] ->
          C.fail ck "%s: transaction #%d has an empty slice chain" path id
      | Some steps ->
          List.iter
            (fun step ->
              match Json.member "stmt" step with
              | Some (Json.Str s) when looks_like_stmt_id s -> ()
              | Some (Json.Str s) ->
                  C.fail ck "%s: #%d slice step has malformed statement id %S"
                    path id s
              | _ ->
                  C.fail ck "%s: #%d slice step without a statement id" path id)
            steps)
    prov

let check_explain path =
  let text = C.read_file path in
  if not (C.contains ~needle:"demarcation point:" text) then
    C.fail ck "%s: --explain output has no demarcation-point line" path;
  if C.contains ~needle:"<unresolved>" text then
    C.fail ck "%s: --explain output contains unresolved statement ids" path

let () =
  match Sys.argv with
  | [| _; provenance_path; explain_path |] ->
      check_provenance provenance_path;
      check_explain explain_path;
      C.finish ck
  | _ -> C.usage ck "PROVENANCE.json EXPLAIN.txt"
