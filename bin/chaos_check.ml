(* Build-time chaos harness: the crash-free invariant, asserted.

   Two legs, both of which fail the build (exit 1) on violation:

   1. Mutation sweep — [mutants] seeded {!Chaos.mutate} corruptions of
      corpus apps (dangling references, truncated bodies, superclass
      cycles, entry-less manifests, hostile strings, scrambled labels)
      each run through [Pipeline.analyze] behind the exception barrier.
      Any escaped exception is a bug: the pipeline must degrade, never
      raise.

   2. Reporting guard — a real app run under a starvation budget must
      surface its degradations in BOTH the report ledger and the
      [pipeline.degradations] metric.  A budget that trips silently is
      exactly the failure mode the resilience layer exists to prevent. *)

module Spec = Extr_corpus.Spec
module Corpus = Extr_corpus.Corpus
module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Resilience = Extr_resilience.Resilience
module Chaos = Extr_resilience.Chaos
module Metrics = Extr_telemetry.Metrics

let mutants = 60

(* Mutants can manufacture pathological control flow, so each one runs
   under a tight budget and a per-mutant deadline: the sweep asserts
   crash-freedom, not completion. *)
let mutant_limits =
  {
    Resilience.Budget.bl_max_steps = 2_000_000;
    bl_max_depth = 24;
    bl_deadline_s = Some 10.0;
  }

let mutant_options =
  { Pipeline.default_options with op_limits = mutant_limits }

let failures = ref 0

let fail fmt =
  Fmt.kstr
    (fun s ->
      incr failures;
      Fmt.epr "chaos_check: FAIL %s@." s)
    fmt

let mutation_sweep () =
  let pool = Array.of_list (Corpus.case_studies () @ Corpus.table1 ()) in
  let escaped = ref 0 in
  for seed = 1 to mutants do
    let entry = pool.(seed mod Array.length pool) in
    let name = entry.Corpus.c_app.Spec.a_name in
    let apk = Lazy.force entry.Corpus.c_apk in
    let mutant, mutations = Chaos.mutate ~seed apk in
    let tag =
      Fmt.str "seed %d on %s [%a]" seed name
        Fmt.(list ~sep:(any "+") string)
        (List.map Chaos.mutation_name mutations)
    in
    match Resilience.Barrier.protect ~app:name (fun () ->
        Pipeline.analyze ~options:mutant_options mutant)
    with
    | Ok analysis ->
        (* The ledger the pipeline accumulated must be the one the report
           carries — a degradation dropped between the two is unreported. *)
        let in_report = List.length analysis.Pipeline.an_report.Report.rp_degradations in
        let in_ledger =
          List.length (Resilience.Degrade.items Resilience.Degrade.default)
        in
        if in_report <> in_ledger then
          fail "%s: %d degradations in ledger but %d in report" tag in_ledger
            in_report
    | Error crash ->
        incr escaped;
        fail "escaped exception: %s: %a@.%s" tag Resilience.Barrier.pp_crash
          crash crash.Resilience.Barrier.cr_backtrace
  done;
  Fmt.pr "chaos_check: %d mutants analyzed, %d escaped exceptions@." mutants
    !escaped

let starvation_limits =
  {
    Resilience.Budget.bl_max_steps = 500;
    bl_max_depth = 24;
    bl_deadline_s = None;
  }

let reporting_guard () =
  Metrics.set_enabled Metrics.default true;
  Metrics.reset Metrics.default;
  let entry =
    match Corpus.find (Corpus.table1 ()) "Pinterest" with
    | Some e -> e
    | None -> List.hd (Corpus.table1 ())
  in
  let options = { Pipeline.default_options with op_limits = starvation_limits } in
  let analysis =
    Pipeline.analyze ~options (Lazy.force entry.Corpus.c_apk)
  in
  let degradations = analysis.Pipeline.an_report.Report.rp_degradations in
  if degradations = [] then
    fail "starved run (%d steps) reported no degradations"
      starvation_limits.Resilience.Budget.bl_max_steps;
  let reported_in_metric =
    List.exists
      (fun (s : Metrics.sample) ->
        s.Metrics.sa_name = "pipeline.degradations" && s.Metrics.sa_count > 0)
      (Metrics.snapshot Metrics.default)
  in
  if not reported_in_metric then
    fail "starved run bumped no pipeline.degradations metric";
  Metrics.set_enabled Metrics.default false;
  Fmt.pr "chaos_check: starvation run degraded in %d place(s), metric recorded@."
    (List.length degradations)

let () =
  Logs.set_level (Some Logs.Error);
  mutation_sweep ();
  reporting_guard ();
  if !failures > 0 then begin
    Fmt.epr "chaos_check: %d failure(s)@." !failures;
    exit 1
  end;
  Fmt.pr "chaos_check: ok@."
