(* Build-time chaos harness: the crash-free invariant, asserted.

   Two legs, both of which fail the build (exit 1) on violation:

   1. Mutation sweep — CHAOS_MUTANTS (default 60) seeded {!Chaos.mutate}
      corruptions of corpus apps (dangling references, truncated bodies,
      superclass cycles, entry-less manifests, hostile strings,
      scrambled labels) each run through [Pipeline.analyze] behind the
      exception barrier.  Any escaped exception is a bug: the pipeline
      must degrade, never raise.  Every failure line names the seed, the
      mutation kinds applied and the app, so a red build reproduces with
      one command.

   2. Reporting guard — a real app run under a starvation budget must
      surface its degradations in BOTH the report ledger and the
      [pipeline.degradations] metric.  A budget that trips silently is
      exactly the failure mode the resilience layer exists to prevent. *)

module C = Check_common
module Spec = Extr_corpus.Spec
module Corpus = Extr_corpus.Corpus
module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Resilience = Extr_resilience.Resilience
module Chaos = Extr_resilience.Chaos
module Metrics = Extr_telemetry.Metrics

let ck = C.create "chaos_check"

(* How many seeded mutants to sweep; override with CHAOS_MUTANTS=N for a
   longer soak (or a quicker local iteration). *)
let mutants = C.env_int ck "CHAOS_MUTANTS" ~default:60

(* Mutants can manufacture pathological control flow, so each one runs
   under a tight budget and a per-mutant deadline: the sweep asserts
   crash-freedom, not completion. *)
let mutant_limits =
  {
    Resilience.Budget.bl_max_steps = 2_000_000;
    bl_max_depth = 24;
    bl_deadline_s = Some 10.0;
  }

let mutant_options =
  { Pipeline.default_options with op_limits = mutant_limits }

let mutation_sweep () =
  let pool = Array.of_list (Corpus.case_studies () @ Corpus.table1 ()) in
  let escaped = ref 0 in
  for seed = 1 to mutants do
    let entry = pool.(seed mod Array.length pool) in
    let name = entry.Corpus.c_app.Spec.a_name in
    let apk = Lazy.force entry.Corpus.c_apk in
    let mutant, mutations = Chaos.mutate ~seed apk in
    (* Everything a failure needs to reproduce: the seed, the mutation
       kinds it produced, and the app they were applied to. *)
    let tag =
      Fmt.str "seed %d on %s [%a]" seed name
        Fmt.(list ~sep:(any "+") string)
        (List.map Chaos.mutation_name mutations)
    in
    match Resilience.Barrier.protect ~app:name (fun () ->
        Pipeline.analyze ~options:mutant_options mutant)
    with
    | Ok analysis ->
        (* The ledger the pipeline accumulated must be the one the report
           carries — a degradation dropped between the two is unreported. *)
        let in_report = List.length analysis.Pipeline.an_report.Report.rp_degradations in
        let in_ledger =
          List.length (Resilience.Degrade.items Resilience.Degrade.default)
        in
        if in_report <> in_ledger then
          C.fail ck "%s: %d degradations in ledger but %d in report" tag
            in_ledger in_report
    | Error crash ->
        incr escaped;
        C.fail ck "escaped exception: %s: %a@.%s" tag
          Resilience.Barrier.pp_crash crash
          crash.Resilience.Barrier.cr_backtrace
  done;
  Fmt.pr "chaos_check: %d mutants analyzed, %d escaped exceptions@." mutants
    !escaped

let starvation_limits =
  {
    Resilience.Budget.bl_max_steps = 500;
    bl_max_depth = 24;
    bl_deadline_s = None;
  }

let reporting_guard () =
  Metrics.set_enabled Metrics.default true;
  Metrics.reset Metrics.default;
  let entry =
    match Corpus.find (Corpus.table1 ()) "Pinterest" with
    | Some e -> e
    | None -> List.hd (Corpus.table1 ())
  in
  let options = { Pipeline.default_options with op_limits = starvation_limits } in
  let analysis =
    Pipeline.analyze ~options (Lazy.force entry.Corpus.c_apk)
  in
  let degradations = analysis.Pipeline.an_report.Report.rp_degradations in
  if degradations = [] then
    C.fail ck "starved run (%d steps) on %s reported no degradations"
      starvation_limits.Resilience.Budget.bl_max_steps
      entry.Corpus.c_app.Spec.a_name;
  let reported_in_metric =
    List.exists
      (fun (s : Metrics.sample) ->
        s.Metrics.sa_name = "pipeline.degradations" && s.Metrics.sa_count > 0)
      (Metrics.snapshot Metrics.default)
  in
  if not reported_in_metric then
    C.fail ck "starved run on %s bumped no pipeline.degradations metric"
      entry.Corpus.c_app.Spec.a_name;
  Metrics.set_enabled Metrics.default false;
  Fmt.pr "chaos_check: starvation run degraded in %d place(s), metric recorded@."
    (List.length degradations)

let () =
  Logs.set_level (Some Logs.Error);
  mutation_sweep ();
  reporting_guard ();
  C.finish ck
