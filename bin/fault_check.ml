(* Build-time guard for the self-healing story: sweep the environment
   fault matrix through the real CLI and assert the run degrades the
   documented way, never a hang and never a silently wrong report.

   1. A clean corpus run, then [stats --verify] over its artifacts: the
      integrity audit must pass on an uncorrupted run.
   2. A worker wedged by the [worker.spin] fault: the watchdog must
      detect the silence within 2x --hang-timeout, requeue the app once
      (journaled Retried, reason hung@PHASE), quarantine it on the
      second hang (Crashed, phase hung@PHASE, surfaced in the report
      envelope), and leave every other app's envelope entry identical
      to the clean run's.
   3. A torn journal record mid-run ([journal.append@N:torn] plus a
      kill-point): --resume must drop the corrupt record, re-run the
      affected app, and still produce a report byte-identical to the
      clean run; [stats --verify] must keep flagging the scar.
   4. A bit-flipped cache entry: [stats --verify] flags it, a warm
      re-run treats it as a miss and re-stores (self-heals), and a
      final audit comes back clean.
   5. An injected ENOSPC on the report write (via EXTRACTOCOL_INJECT):
      exit 1, no output file, no orphaned temp.
   6. A truncated IPC frame ([pool.frame]): the coordinator must treat
      the partial frame as a worker death and finish the run.

   Everything runs over a --gen corpus: small, uniform apps whose
   longest silent phase sits far under the 1s --hang-timeout, so the
   watchdog assertions are about the injected wedge, never about a
   legitimately slow app (heartbeats are phase-granular — on the real
   corpus the operator sizes the timeout past the slowest phase).

   Knobs: FAULT_JOBS (pool width for the clean/hang runs, default 2)
   and FAULT_SEED (seeds the generated corpus and moves the tear). *)

module C = Check_common
module Json = Extr_httpmodel.Json

let ck = C.create "fault_check"

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let float_member key obj =
  match Json.member key obj with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int n) -> Some (float_of_int n)
  | _ -> None

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* The app the hang scenario wedges: generated names are unique, so
   the journal holds exactly one Retried/Crashed pair to time. *)
let victim = "gen0005"

let check exe =
  let exe =
    if Filename.is_relative exe then Filename.concat (Sys.getcwd ()) exe
    else exe
  in
  let jobs = C.env_int ck "FAULT_JOBS" ~default:2 in
  let seed = C.env_int ck "FAULT_SEED" ~default:1 in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fault_check.%d" (Unix.getpid ()))
  in
  Sys.mkdir tmp 0o755;
  let p name = Filename.concat tmp name in
  (* Run the CLI, demand the expected exit code, return its output.
     [env] prefixes a shell variable assignment — the EXTRACTOCOL_INJECT
     channel must work without any command-line flag. *)
  let run_cli ?(env = "") ~expect label args =
    let out = p (label ^ ".out") in
    let cmd = Filename.quote_command exe args ~stdout:out ~stderr:out in
    let code = Sys.command (if env = "" then cmd else env ^ " " ^ cmd) in
    if code <> expect then
      C.fail ck "%s run exited %d, expected %d (see %s)" label code expect out;
    C.read_file out
  in
  let apps_of label path =
    match C.list_member "apps" (C.load_json ck path) with
    | Some l -> l
    | None ->
        C.fail ck "%s report has no \"apps\" array" label;
        []
  in
  let jobs_s = string_of_int jobs in
  let gen = [ "--gen"; "16"; "--gen-seed"; string_of_int seed ] in

  (* 1: clean baseline, and the integrity audit over its artifacts. *)
  let _ =
    run_cli ~expect:0 "clean"
      ([
         "--all"; "--jobs"; jobs_s; "--journal"; p "clean.jsonl";
         "--cache-dir"; p "cache"; "--report-out"; p "clean.json";
       ]
      @ gen)
  in
  let clean_verify =
    run_cli ~expect:0 "clean-verify"
      [
        "stats"; "--verify"; "--journal"; p "clean.jsonl"; "--cache-dir";
        p "cache";
      ]
  in
  if not (C.contains ~needle:"all artifacts verified clean" clean_verify) then
    C.fail ck "clean audit did not report a clean bill of health";
  let clean_apps = apps_of "clean" (p "clean.json") in

  (* 2: the hung-worker watchdog.  One app spins forever without
     heartbeats; a 1s timeout must catch it twice (requeue, then
     quarantine) without disturbing anyone else. *)
  let hang_timeout = 1.0 in
  let hang_out =
    run_cli ~expect:2 "hang"
      ([
         "--all"; "--jobs"; jobs_s; "--hang-timeout";
         string_of_float hang_timeout; "--inject"; "worker.spin:" ^ victim;
         "--journal"; p "hang.jsonl"; "--report-out"; p "hang.json";
       ]
      @ gen)
  in
  if not (C.contains ~needle:("quarantined: " ^ victim) hang_out) then
    C.fail ck "hung app missing from the quarantine list";
  let hang_apps = apps_of "hang" (p "hang.json") in
  if List.length hang_apps <> List.length clean_apps then
    C.fail ck "hang report covers %d apps, clean run covered %d"
      (List.length hang_apps) (List.length clean_apps)
  else
    List.iter2
      (fun clean_app hang_app ->
        let name =
          Option.value (C.str_member "app" hang_app) ~default:"?"
        in
        if name = victim then begin
          match Json.find_path [ "crash"; "phase" ] hang_app with
          | Some (Json.Str phase) when has_prefix ~prefix:"hung@" phase -> ()
          | Some (Json.Str phase) ->
              C.fail ck "%s quarantined under phase %S, expected hung@..."
                victim phase
          | _ -> C.fail ck "%s has no crash phase in the hang report" victim
        end
        else if not (Json.equal clean_app hang_app) then
          C.fail ck
            "the watchdog changed %s's envelope entry (must match the clean \
             run byte for byte)"
            name)
      clean_apps hang_apps;
  (* Detection latency, from the journal's own stamps: the requeue
     (first hang) and the quarantine (second hang) must each land
     within 2x the timeout, so their gap is bounded by it too. *)
  let journal_records path =
    C.read_file path |> String.split_on_char '\n'
    |> List.filter_map Json.of_string_opt
  in
  let stamp_where pred =
    List.filter_map
      (fun r -> if pred r then float_member "t" r else None)
      (journal_records (p "hang.jsonl"))
  in
  let hung_member key r =
    match Json.member key r with
    | Some (Json.Str s) -> has_prefix ~prefix:"hung@" s
    | _ -> false
  in
  (match
     ( stamp_where (hung_member "reason"),
       stamp_where (hung_member "phase") )
   with
  | [ retried_t ], [ crashed_t ] ->
      if crashed_t -. retried_t > 2.0 *. hang_timeout then
        C.fail ck
          "watchdog took %.2fs between requeue and quarantine (budget %.2fs)"
          (crashed_t -. retried_t)
          (2.0 *. hang_timeout)
  | retried, crashed ->
      C.fail ck
        "expected exactly one hung@ Retried and one hung@ Crashed record, \
         found %d and %d"
        (List.length retried) (List.length crashed));

  (* 3: a torn journal record mid-file.  The tear lands on record
     OCC; the kill-point guarantees later appends glue onto the torn
     half, so the corruption is mid-file, not a truncated tail.  The
     resume must drop (and warn about) the corrupt record, restore the
     intact apps, and recover the torn one from the cache or by
     re-analysis — never by trusting the damaged line.  The analysis
     content must come out identical to the clean run's; only the
     cached/attempts bookkeeping may differ for the recovered app. *)
  let occ = 2 + (seed mod 3) in
  let _ =
    run_cli ~expect:99 "torn"
      ([
         "--all"; "--jobs"; "1"; "--journal"; p "torn.jsonl"; "--cache-dir";
         p "torn-cache"; "--inject";
         Printf.sprintf "journal.append@%d:torn" occ; "--crash-at";
         "pipeline.interpretation@4";
       ]
      @ gen)
  in
  let resumed_out =
    run_cli ~expect:0 "resumed"
      ([
         "--all"; "--jobs"; "1"; "--resume"; "--journal"; p "torn.jsonl";
         "--cache-dir"; p "torn-cache"; "--report-out"; p "resumed.json";
       ]
      @ gen)
  in
  if not (C.contains ~needle:"[resumed]" resumed_out) then
    C.fail ck "resume restored nothing despite a mostly-intact journal";
  if not (C.contains ~needle:"dropped corrupt journal record" resumed_out)
  then C.fail ck "resume never reported the corrupt record it dropped";
  let strip_flags = function
    | Json.Obj fields ->
        Json.Obj
          (List.filter
             (fun (k, _) -> k <> "cached" && k <> "attempts")
             fields)
    | j -> j
  in
  let resumed_apps = apps_of "resumed" (p "resumed.json") in
  if List.length resumed_apps <> List.length clean_apps then
    C.fail ck "resumed report covers %d apps, clean run covered %d"
      (List.length resumed_apps) (List.length clean_apps)
  else
    List.iter2
      (fun clean_app resumed_app ->
        if not (Json.equal (strip_flags clean_app) (strip_flags resumed_app))
        then
          C.fail ck
            "resume over a torn journal changed %s's analysis results"
            (Option.value (C.str_member "app" resumed_app) ~default:"?"))
      clean_apps resumed_apps;
  let torn_verify =
    run_cli ~expect:3 "torn-verify"
      [ "stats"; "--verify"; "--journal"; p "torn.jsonl" ]
  in
  if not (C.contains ~needle:"CORRUPT" torn_verify) then
    C.fail ck "the audit passed a journal with a torn mid-file record";

  (* 4: a bit-flipped cache entry self-heals.  Flip one payload byte in
     the clean cache, watch the audit flag it, then watch a warm run
     miss, re-analyze and re-store that one entry. *)
  let entry =
    match
      Sys.readdir (p "cache") |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort compare
    with
    | f :: _ -> Filename.concat (p "cache") f
    | [] ->
        C.die ck "clean run left no cache entries in %s" (p "cache")
  in
  let flip path pos =
    let b = Bytes.of_string (C.read_file path) in
    if Bytes.length b <= pos then
      C.die ck "%s too short to corrupt at byte %d" path pos;
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_bytes oc b)
  in
  (* Past the "%EXTR1 <md5>\n" seal header, inside the payload. *)
  flip entry 50;
  let corrupt_verify =
    run_cli ~expect:3 "corrupt-verify"
      [
        "stats"; "--verify"; "--journal"; p "clean.jsonl"; "--cache-dir";
        p "cache";
      ]
  in
  if not (C.contains ~needle:"CORRUPT" corrupt_verify) then
    C.fail ck "the audit passed a cache entry with a flipped payload byte";
  let _ =
    run_cli ~expect:0 "healed"
      ([
         "--all"; "--jobs"; "1"; "--cache-dir"; p "cache"; "--report-out";
         p "healed.json"; "--metrics-out"; p "healed-metrics.json";
       ]
      @ gen)
  in
  let samples =
    match
      C.list_member "metrics" (C.load_json ck (p "healed-metrics.json"))
    with
    | Some l -> l
    | None ->
        C.fail ck "healing run's metrics snapshot has no \"metrics\" array";
        []
  in
  let count name =
    List.fold_left
      (fun acc s ->
        if C.str_member "name" s = Some name then
          acc + Option.value (C.int_member "count" s) ~default:0
        else acc)
      0 samples
  in
  if count "cache.corrupt" < 1 then
    C.fail ck "healing run never counted the corrupt entry (cache.corrupt)";
  if count "cache.misses" < 1 then
    C.fail ck "healing run hit %d misses; the corrupt entry must miss"
      (count "cache.misses");
  let healed_verify =
    run_cli ~expect:0 "healed-verify"
      [
        "stats"; "--verify"; "--journal"; p "clean.jsonl"; "--cache-dir";
        p "cache";
      ]
  in
  if not (C.contains ~needle:"all artifacts verified clean" healed_verify)
  then C.fail ck "cache did not heal: audit still failing after the warm run";

  (* 5: ENOSPC on the report write, armed through the environment
     channel.  The run itself succeeds (warm cache), the write fails:
     exit 1, no half-written report, no orphaned temp file. *)
  let enospc_out =
    run_cli ~env:"EXTRACTOCOL_INJECT='export.write:enospc'" ~expect:1
      "enospc"
      ([
         "--all"; "--jobs"; "1"; "--cache-dir"; p "cache"; "--report-out";
         p "enospc.json";
       ]
      @ gen)
  in
  if not (C.contains ~needle:"cannot write output" enospc_out) then
    C.fail ck "injected ENOSPC produced no write error";
  if Sys.file_exists (p "enospc.json") then
    C.fail ck "a report file exists despite the failed write";
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        C.fail ck "orphaned temp file left behind by the failed write: %s" f)
    (Sys.readdir tmp);

  (* 6: a truncated IPC frame.  Every worker ships half its first
     result frame and dies; the coordinator must reap each death,
     quarantine the in-flight app, and still finish the run. *)
  let frame_out =
    run_cli ~expect:2 "frame"
      ([ "--all"; "--jobs"; "2"; "--inject"; "pool.frame" ] @ gen)
  in
  if not (C.contains ~needle:"quarantined:" frame_out) then
    C.fail ck "truncated frames produced no quarantine";

  if ck.C.ck_failures = 0 then remove_tree tmp
  else Fmt.epr "fault_check: intermediate state kept in %s@." tmp

let () =
  match Sys.argv with
  | [| _; exe |] ->
      check exe;
      C.finish ck
  | _ -> C.usage ck "EXTRACTOCOL_BINARY"
