(* Library de-obfuscation accuracy report (§3.4 extension).

   For every corpus app: obfuscate the library surface with ground truth
   retained, run {!Extr_apk.Deobfuscator.recover}, and compare the
   recovered map against the truth.  Classes are graded on whether the
   application actually invokes them (classes the app never touches have
   no usage profile and are recovered only through relational
   propagation, so they are reported separately). *)

module Ir = Extr_ir.Types
module Apk = Extr_apk.Apk
module Obfuscator = Extr_apk.Obfuscator
module Deobfuscator = Extr_apk.Deobfuscator
module Api = Extr_semantics.Api
module Corpus = Extr_corpus.Corpus

open Cmdliner

type row = {
  r_app : string;
  r_right : int;
  r_wrong : int;
  r_unrecovered : int;
  r_methods : int;
  r_wrong_detail : (string * string) list; (* truth class, recovered as *)
}

(** Library classes the application itself invokes (directly referenced in
    an app-class body); only these carry usage profiles. *)
let used_library_classes (apk : Apk.t) =
  let used = Hashtbl.create 16 in
  List.iter
    (fun (c : Ir.cls) ->
      if not c.Ir.c_library then
        List.iter
          (fun (m : Ir.meth) ->
            Array.iter
              (fun stmt ->
                match Ir.stmt_invoke stmt with
                | Some i when Api.is_library_class i.Ir.iref.Ir.mcls ->
                    Hashtbl.replace used i.Ir.iref.Ir.mcls ()
                | Some _ | None -> ())
              m.Ir.m_body)
          c.Ir.c_methods)
    apk.Apk.program.Ir.p_classes;
  used

let grade (e : Corpus.entry) : row =
  let apk = Lazy.force e.Corpus.c_apk in
  let obf, truth = Obfuscator.obfuscate_libraries apk in
  let _, mapping = Deobfuscator.deobfuscate obf in
  let used = used_library_classes apk in
  let right = ref 0 and wrong = ref 0 and unrec = ref 0 in
  let wrong_detail = ref [] in
  Hashtbl.iter
    (fun cls () ->
      let obf_name = Obfuscator.rename_class truth cls in
      match List.assoc_opt obf_name mapping.Deobfuscator.dm_classes with
      | Some known when known = cls -> incr right
      | Some known ->
          incr wrong;
          wrong_detail := (cls, known) :: !wrong_detail
      | None -> incr unrec)
    used;
  {
    r_app = e.Corpus.c_app.Extr_corpus.Spec.a_name;
    r_right = !right;
    r_wrong = !wrong;
    r_unrecovered = !unrec;
    r_methods = List.length mapping.Deobfuscator.dm_methods;
    r_wrong_detail = List.sort compare !wrong_detail;
  }

let setup_logs level =
  match level with
  | None -> Extr_telemetry.Log_setup.init ()
  | Some s -> (
      match Extr_telemetry.Log_setup.level_of_string s with
      | Ok lvl -> Extr_telemetry.Log_setup.init_opt lvl
      | Error msg ->
          Fmt.epr "%s@." msg;
          exit 2)

let report log_level details =
  setup_logs log_level;
  let entries = Corpus.case_studies () @ Corpus.table1 () in
  (* Case studies first, then Table 1 order; skip duplicate names. *)
  let seen = Hashtbl.create 16 in
  let entries =
    List.filter
      (fun (e : Corpus.entry) ->
        let n = e.Corpus.c_app.Extr_corpus.Spec.a_name in
        if Hashtbl.mem seen n then false
        else begin
          Hashtbl.replace seen n ();
          true
        end)
      entries
  in
  Fmt.pr "%-32s %7s %7s %7s %9s@." "app" "right" "wrong" "open" "methods";
  let rows = List.map grade entries in
  List.iter
    (fun r ->
      Fmt.pr "%-32s %7d %7d %7d %9d@." r.r_app r.r_right r.r_wrong
        r.r_unrecovered r.r_methods;
      if details then
        List.iter
          (fun (cls, known) -> Fmt.pr "    %s recovered as %s@." cls known)
          r.r_wrong_detail)
    rows;
  let tot f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let right = tot (fun r -> r.r_right)
  and wrong = tot (fun r -> r.r_wrong)
  and unrec = tot (fun r -> r.r_unrecovered) in
  Fmt.pr "%-32s %7d %7d %7d@." "total" right wrong unrec;
  Fmt.pr "@.class accuracy on used classes: %.1f%% (%d/%d)@."
    (100. *. float_of_int right /. float_of_int (right + wrong + unrec))
    right
    (right + wrong + unrec);
  0

let details_flag =
  let doc = "Print each misrecovered class." in
  Arg.(value & flag & info [ "details" ] ~doc)

let log_level_arg =
  let doc =
    "Logging level: $(b,quiet), $(b,app), $(b,error), $(b,warning),\n\
     $(b,info) or $(b,debug) (default warning)."
  in
  Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let cmd =
  let doc = "grade library de-obfuscation against ground truth" in
  let info = Cmd.info "deobf_report" ~version:"1.0" ~doc in
  Cmd.v info Term.(const report $ log_level_arg $ details_flag)

let () = exit (Cmd.eval' cmd)
