(* Build-time guard for the method-level profiler: drive the real CLI
   with --profile-out/--hotspots on, then require

   1. the profile artifact to be well-formed, with per-method attribution
      that sums to no more than the enclosing pipeline phase span (a
      profile phase like "slicing.backward" maps to the span of its
      prefix, "pipeline.slicing");
   2. the collapsed-stack FILE.folded companion to be well-formed: every
      line "frame;frame;... count" with non-empty frames and a
      non-negative integer count;
   3. profiling to be observation-only: an --all run with the profiler on
      writes a report envelope byte-identical to one with it off;
   4. the --jobs 1 and --jobs N profile aggregates to agree exactly on
      every count (fuel, visits, facts, methods, waste rows) — wall
      times are summed across workers, never compared.

   N comes from PROFILE_JOBS (default 4, capped at 8).  Invoked from the
   runtest alias with the extractocol binary's path; all intermediate
   state lives in a private temp directory. *)

module C = Check_common
module Json = Extr_httpmodel.Json

let ck = C.create "profile_check"

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let num_member key obj =
  match Json.member key obj with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int n) -> Some (float_of_int n)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* 1: attribution within the enclosing phase span                      *)
(* ------------------------------------------------------------------ *)

(* A method's wall time is flushed by the cursor inside the engine's
   worklist loop, which itself runs inside the pipeline phase span —
   so per-phase attribution can never exceed the span's cumulative
   time (5 ms of slack absorbs clock granularity). *)
let check_attribution prof =
  let rows = Option.value ~default:[] (C.list_member "profile" prof) in
  if rows = [] then C.fail ck "profile artifact has no method rows";
  let sums = Hashtbl.create 4 in
  List.iter
    (fun r ->
      (match C.str_member "method" r with
      | Some m when m <> "" -> ()
      | _ -> C.fail ck "profile row without a method name");
      (match C.int_member "visits" r with
      | Some v when v >= 0 -> ()
      | _ -> C.fail ck "profile row with a bad visits count");
      (match C.int_member "fuel" r with
      | Some f when f >= 0 -> ()
      | _ -> C.fail ck "profile row with a bad fuel count");
      let t = Option.value ~default:0.0 (num_member "time_s" r) in
      if t < 0.0 then C.fail ck "profile row with negative time";
      match C.str_member "phase" r with
      | None -> C.fail ck "profile row without a phase"
      | Some phase ->
          let prefix =
            match String.index_opt phase '.' with
            | Some i -> String.sub phase 0 i
            | None -> phase
          in
          Hashtbl.replace sums prefix
            (t +. Option.value ~default:0.0 (Hashtbl.find_opt sums prefix)))
    rows;
  let phases = Option.value ~default:[] (C.list_member "phases" prof) in
  let cum name =
    List.find_map
      (fun p ->
        if C.str_member "phase" p = Some name then num_member "cum_s" p
        else None)
      phases
  in
  Hashtbl.iter
    (fun prefix total ->
      let span = "pipeline." ^ prefix in
      match cum span with
      | None -> C.fail ck "profile phase rollup has no %s span" span
      | Some c ->
          if total > c +. 0.005 then
            C.fail ck
              "method attribution for %s sums to %.6fs, exceeding its \
               enclosing %s span (%.6fs)"
              prefix total span c)
    sums

let check_waste prof ~scope =
  match C.list_member "waste" prof with
  | None | Some [] -> C.fail ck "profile artifact has no waste rows"
  | Some rows ->
      let found = ref false in
      List.iter
        (fun r ->
          let touched =
            Option.value ~default:(-1) (C.int_member "touched_methods" r)
          in
          let contributing =
            Option.value ~default:(-1) (C.int_member "contributing_methods" r)
          in
          let ratio = Option.value ~default:(-1.0) (num_member "waste_ratio" r) in
          if touched < 0 || contributing < 0 || contributing > touched then
            C.fail ck "waste row with impossible counts (%d touched, %d contributing)"
              touched contributing;
          if ratio < 0.0 || ratio > 1.0 then
            C.fail ck "waste ratio %.3f outside [0, 1]" ratio;
          if C.str_member "scope" r = Some scope then begin
            found := true;
            if touched = 0 then
              C.fail ck "waste row for %s touched no methods" scope
          end)
        rows;
      if not !found then C.fail ck "no waste row for %s" scope

(* ------------------------------------------------------------------ *)
(* 2: folded well-formedness                                           *)
(* ------------------------------------------------------------------ *)

let check_folded path =
  let lines = String.split_on_char '\n' (C.read_file path) in
  let n = ref 0 in
  List.iter
    (fun line ->
      if line <> "" then begin
        incr n;
        match String.rindex_opt line ' ' with
        | None -> C.fail ck "folded line has no count: %S" line
        | Some i ->
            let stack = String.sub line 0 i in
            let count = String.sub line (i + 1) (String.length line - i - 1) in
            (match int_of_string_opt count with
            | Some c when c >= 0 -> ()
            | _ ->
                C.fail ck "folded count is not a non-negative integer: %S"
                  line);
            if stack = "" then C.fail ck "folded line has an empty stack: %S" line
            else
              List.iter
                (fun frame ->
                  if frame = "" then
                    C.fail ck "folded line has an empty frame: %S" line)
                (String.split_on_char ';' stack)
      end)
    lines;
  if !n = 0 then C.fail ck "folded export %s is empty" path

(* ------------------------------------------------------------------ *)
(* 4: count-exact aggregation across jobs settings                     *)
(* ------------------------------------------------------------------ *)

(* Zero every wall-time field, keeping all counts: what must agree
   exactly between --jobs 1 and --jobs N.  Times are sums of per-worker
   measurements, deterministic in structure but not in value. *)
let rec scrub = function
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "time_s" || k = "cum_s" || k = "self_s" then
               (k, Json.Float 0.0)
             else (k, scrub v))
           fields)
  | Json.List l -> Json.List (List.map scrub l)
  | j -> j

let check exe =
  let exe =
    if Filename.is_relative exe then Filename.concat (Sys.getcwd ()) exe
    else exe
  in
  let jobs = min 8 (C.env_int ck "PROFILE_JOBS" ~default:4) in
  let jobs_s = string_of_int jobs in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "profile_check.%d" (Unix.getpid ()))
  in
  Sys.mkdir tmp 0o755;
  let p name = Filename.concat tmp name in
  let run_cli ~expect label args =
    let out = p (label ^ ".out") in
    let code =
      Sys.command (Filename.quote_command exe args ~stdout:out ~stderr:out)
    in
    if code <> expect then
      C.fail ck "%s run exited %d, expected %d (see %s)" label code expect out;
    C.read_file out
  in
  (* Single-app profile: artifact well-formedness, attribution bounds,
     waste accounting, the folded companion and the --hotspots table. *)
  let single_out =
    run_cli ~expect:0 "single"
      [ "--profile-out"; p "prof.json"; "--hotspots"; "5"; "radio reddit" ]
  in
  let prof = C.load_json ck (p "prof.json") in
  check_attribution prof;
  check_waste prof ~scope:"radio reddit";
  check_folded (p "prof.json.folded");
  if not (C.contains ~needle:"waste[radio reddit]" single_out) then
    C.fail ck "--hotspots did not print the waste summary";
  if not (C.contains ~needle:"slicing" single_out) then
    C.fail ck "--hotspots table names no slicing phase";
  (* Observation-only: the corpus report envelope must not change when
     the profiler records. *)
  let _ =
    run_cli ~expect:0 "off"
      [ "--all"; "--jobs"; jobs_s; "--report-out"; p "off.json" ]
  in
  let _ =
    run_cli ~expect:0 "on"
      [
        "--all"; "--jobs"; jobs_s; "--report-out"; p "on.json";
        "--profile-out"; p ("p" ^ jobs_s ^ ".json");
      ]
  in
  if not (String.equal (C.read_file (p "off.json")) (C.read_file (p "on.json")))
  then
    C.fail ck
      "profiling changed the --all report envelope (%s vs %s must be \
       byte-identical)"
      (p "on.json") (p "off.json");
  (* Aggregation: --jobs 1 and --jobs N must agree on every count. *)
  let _ =
    run_cli ~expect:0 "p1"
      [ "--all"; "--jobs"; "1"; "--profile-out"; p "p1.json" ]
  in
  let scrubbed path = Json.to_string (scrub (C.load_json ck path)) in
  if
    not
      (String.equal
         (scrubbed (p "p1.json"))
         (scrubbed (p ("p" ^ jobs_s ^ ".json"))))
  then
    C.fail ck
      "--jobs %s profile counts differ from --jobs 1 (%s vs %s with times \
       zeroed)"
      jobs_s
      (p ("p" ^ jobs_s ^ ".json"))
      (p "p1.json");
  check_folded (p "p1.json.folded");
  if ck.C.ck_failures = 0 then remove_tree tmp
  else Fmt.epr "profile_check: intermediate state kept in %s@." tmp

let () =
  match Sys.argv with
  | [| _; exe |] ->
      check exe;
      C.finish ck
  | _ -> C.usage ck "EXTRACTOCOL_BINARY"
