(* Build-time guard for fleet observability: drive the real CLI over the
   corpus with --jobs N and every artifact on, then require

   1. the merged Chrome trace to be well-formed JSON with exactly one
      named lane per worker process (plus the coordinator lane), spans
      from EVERY worker, every span on a declared lane, and per-lane
      timestamps monotonic — the cross-process shipping protocol either
      loses nothing or fails the build;
   2. the --jobs 1 and --jobs N report envelopes to stay byte-identical
      (telemetry shipping must not leak completion order into results);
   3. `extractocol stats --journal J` to reproduce the live run's
      summary footer purely from the artifacts on disk.

   N comes from TRACE_JOBS (default 4, capped at 8).  Invoked from the
   runtest alias with the extractocol binary's path; all intermediate
   state lives in a private temp directory. *)

module C = Check_common
module Json = Extr_httpmodel.Json

let ck = C.create "trace_check"

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let num_member key obj =
  match Json.member key obj with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int n) -> Some (float_of_int n)
  | _ -> None

(* The summary footer the --all table ends with ("N apps: ..."). *)
let summary_of_output out =
  String.split_on_char '\n' out
  |> List.find_opt (fun l -> C.contains ~needle:" apps: " (" " ^ l))

let check_trace ~jobs path =
  let j = C.load_json ck path in
  let events =
    match C.list_member "traceEvents" j with
    | Some l -> l
    | None ->
        C.fail ck "%s has no traceEvents array" path;
        []
  in
  (* Lanes are declared by thread_name metadata records; spans must land
     on declared lanes only. *)
  let lanes = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if C.str_member "ph" e = Some "M" then
        match (C.str_member "name" e, C.int_member "tid" e) with
        | Some "thread_name", Some tid ->
            if Hashtbl.mem lanes tid then
              C.fail ck "trace declares lane tid=%d twice" tid
            else
              Hashtbl.replace lanes tid
                (match Json.member "args" e with
                | Some args -> Option.value ~default:"?" (C.str_member "name" args)
                | None -> "?")
        | _ -> ())
    events;
  (* Exactly one lane per worker process, plus the coordinator's. *)
  let worker_lanes =
    Hashtbl.fold
      (fun _ label n ->
        if String.length label >= 7 && String.sub label 0 7 = "worker " then
          n + 1
        else n)
      lanes 0
  in
  if worker_lanes <> jobs then
    C.fail ck "expected %d worker lanes, trace has %d" jobs worker_lanes;
  if not (Hashtbl.fold (fun _ l acc -> acc || l = "coordinator") lanes false)
  then C.fail ck "trace has no coordinator lane";
  (* Every span sits on a declared lane; per-lane timestamps are
     monotonic; every worker lane carries at least one span. *)
  let last_ts = Hashtbl.create 8 in
  let span_count = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if C.str_member "ph" e = Some "X" then
        match (C.int_member "tid" e, num_member "ts" e) with
        | Some tid, Some ts ->
            if not (Hashtbl.mem lanes tid) then
              C.fail ck "span %S on undeclared lane tid=%d"
                (Option.value ~default:"?" (C.str_member "name" e))
                tid;
            (match Hashtbl.find_opt last_ts tid with
            | Some prev when ts < prev ->
                C.fail ck
                  "lane tid=%d timestamps not monotonic (%.0f after %.0f)" tid
                  ts prev
            | _ -> ());
            Hashtbl.replace last_ts tid ts;
            Hashtbl.replace span_count tid
              (1 + Option.value ~default:0 (Hashtbl.find_opt span_count tid));
            if num_member "dur" e = None then
              C.fail ck "span on lane tid=%d has no duration" tid
        | _ -> C.fail ck "span event without tid/ts in %s" path)
    events;
  Hashtbl.iter
    (fun tid label ->
      if label <> "coordinator" && not (Hashtbl.mem span_count tid) then
        C.fail ck "worker lane tid=%d (%s) shipped no spans" tid label)
    lanes

let check exe =
  let exe =
    if Filename.is_relative exe then Filename.concat (Sys.getcwd ()) exe
    else exe
  in
  let jobs = min 8 (C.env_int ck "TRACE_JOBS" ~default:4) in
  let jobs_s = string_of_int jobs in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "trace_check.%d" (Unix.getpid ()))
  in
  Sys.mkdir tmp 0o755;
  let p name = Filename.concat tmp name in
  let run_cli ~expect label args =
    let out = p (label ^ ".out") in
    let code =
      Sys.command (Filename.quote_command exe args ~stdout:out ~stderr:out)
    in
    if code <> expect then
      C.fail ck "%s run exited %d, expected %d (see %s)" label code expect out;
    C.read_file out
  in
  (* Sequential baseline envelope, with its own fresh cache so intra-run
     duplicate-name cache hits land the same way they do in parallel. *)
  let _ =
    run_cli ~expect:0 "seq"
      [
        "--all"; "--jobs"; "1"; "--cache-dir"; p "seq-cache"; "--report-out";
        p "seq.json";
      ]
  in
  (* The observed parallel run: journal, cache, metrics and the merged
     trace all on at once. *)
  let par_out =
    run_cli ~expect:0 "par"
      [
        "--all"; "--jobs"; jobs_s; "--journal"; p "journal.jsonl";
        "--cache-dir"; p "cache"; "--metrics-out"; p "metrics.json";
        "--trace-out"; p "trace.json"; "--report-out"; p "par.json";
      ]
  in
  if not (String.equal (C.read_file (p "seq.json")) (C.read_file (p "par.json")))
  then
    C.fail ck
      "--jobs %s report (with telemetry shipping on) is not byte-identical \
       to --jobs 1 (%s vs %s)"
      jobs_s (p "par.json") (p "seq.json");
  check_trace ~jobs (p "trace.json");
  (* The offline reconstruction must agree with the live run. *)
  let stats_out =
    run_cli ~expect:0 "stats"
      [
        "stats"; "--journal"; p "journal.jsonl"; "--cache-dir"; p "cache";
        "--metrics"; p "metrics.json";
      ]
  in
  (match summary_of_output par_out with
  | None -> C.fail ck "--all output has no summary footer"
  | Some footer ->
      if not (C.contains ~needle:footer stats_out) then
        C.fail ck "stats does not reproduce the run footer %S" footer);
  if not (C.contains ~needle:"pipeline phases" stats_out) then
    C.fail ck "stats did not render the per-phase percentile table";
  if not (C.contains ~needle:"slowest apps" stats_out) then
    C.fail ck "stats did not render the slowest-apps table";
  if ck.C.ck_failures = 0 then remove_tree tmp
  else Fmt.epr "trace_check: intermediate state kept in %s@." tmp

let () =
  match Sys.argv with
  | [| _; exe |] ->
      check exe;
      C.finish ck
  | _ -> C.usage ck "EXTRACTOCOL_BINARY"
