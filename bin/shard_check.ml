(* Build-time guard for the sharded corpus farm: drive the real CLI
   over a generated corpus split into SHARD_N shards and require that
   `merge` reassembles exactly the unsharded run — including after a
   shard is killed mid-flight and resumed, and degrading (never
   aborting) on damaged artifacts.

   1. An unsharded --jobs 1 run over a --gen corpus sets the baseline
      report envelope.
   2. Every shard runs with its own journal + cache; one victim shard
      (the first with work) is killed at an injected kill-point
      (exit 99) and finished with --resume.
   3. merge over all N shard artifact sets must exit 0 and write a
      BYTE-identical envelope — sharding must never leak into the
      report.
   4. Re-merging merge's own journal + cache must reproduce the same
      envelope (idempotency), and `stats` must read the merged journal
      like a runner-written one.
   5. A truncated cache entry must quarantine: merge exits 3 and the
      envelope carries merge_degradations[], with every healthy app
      still present.
   6. Withholding the victim's journal under --expect-shards N must
      exit 4 with missing_shards[]/missing_apps[] in the envelope.

   N comes from SHARD_N (default 3, clamped to 2..8); the generated
   corpus (24 apps) is large enough that every shard owns work at any
   sane N.  Invoked from the runtest alias with the extractocol
   binary's path; all intermediate state lives in a private temp
   directory. *)

module C = Check_common
module Runner = Extr_eval.Runner
module Corpus = Extr_corpus.Corpus
module Spec = Extr_corpus.Spec

let ck = C.create "shard_check"
let gen_seed = 5
let gen_count = 24
let gen_flags = [ "--gen"; string_of_int gen_count; "--gen-seed"; string_of_int gen_seed ]

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let copy_dir src dst =
  Sys.mkdir dst 0o755;
  Array.iter
    (fun f ->
      let contents = C.read_file (Filename.concat src f) in
      Out_channel.with_open_bin (Filename.concat dst f) (fun oc ->
          Out_channel.output_string oc contents))
    (Sys.readdir src)

let check exe =
  let exe =
    if Filename.is_relative exe then Filename.concat (Sys.getcwd ()) exe
    else exe
  in
  let shards = max 2 (min 8 (C.env_int ck "SHARD_N" ~default:3)) in
  (* The same partition the runner applies: pick the first shard that
     owns apps as the kill victim, and size the kill-point so it fires
     inside that shard's run. *)
  let per_shard = Array.make shards 0 in
  List.iter
    (fun (e : Corpus.entry) ->
      let k = Runner.shard_index ~shards e.Corpus.c_app.Spec.a_name in
      per_shard.(k) <- per_shard.(k) + 1)
    (Corpus.generated ~seed:gen_seed ~count:gen_count);
  let victim =
    match Array.find_index (fun n -> n > 0) per_shard with
    | Some i -> i + 1
    | None -> C.die ck "generated corpus is empty?"
  in
  let kill_occurrence = min 2 per_shard.(victim - 1) in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "shard_check.%d" (Unix.getpid ()))
  in
  Sys.mkdir tmp 0o755;
  let p name = Filename.concat tmp name in
  let journal k = p (Printf.sprintf "s%d.jsonl" k) in
  let cache k = p (Printf.sprintf "c%d" k) in
  let run_cli ~expect label args =
    let out = p (label ^ ".out") in
    let code =
      Sys.command (Filename.quote_command exe args ~stdout:out ~stderr:out)
    in
    if code <> expect then
      C.fail ck "%s run exited %d, expected %d (see %s)" label code expect out;
    C.read_file out
  in
  (* 1: the unsharded baseline. *)
  let _ =
    run_cli ~expect:0 "base"
      ([
         "--all"; "--jobs"; "1"; "--journal"; p "base.jsonl"; "--cache-dir";
         p "base-cache"; "--report-out"; p "base.json";
       ]
      @ gen_flags)
  in
  let base = C.read_file (p "base.json") in
  (* 2: the shard runs; the victim is killed mid-flight and resumed. *)
  for k = 1 to shards do
    let spec = Printf.sprintf "%d/%d" k shards in
    let common =
      [
        "--all"; "--jobs"; "1"; "--shard"; spec; "--journal"; journal k;
        "--cache-dir"; cache k;
      ]
      @ gen_flags
    in
    if k = victim then begin
      let _ =
        run_cli ~expect:99 "killed"
          (common
          @ [
              "--crash-at";
              Printf.sprintf "pipeline.interpretation@%d" kill_occurrence;
            ])
      in
      ignore (run_cli ~expect:0 "resumed" (common @ [ "--resume" ]))
    end
    else ignore (run_cli ~expect:0 (Printf.sprintf "shard%d" k) common)
  done;
  let range = List.init shards (fun i -> i + 1) in
  let jflags ks = List.concat_map (fun k -> [ "--journal"; journal k ]) ks in
  let cflags ks = List.concat_map (fun k -> [ "--cache-dir"; cache k ]) ks in
  (* 3: merging every shard must reassemble the unsharded envelope. *)
  let _ =
    run_cli ~expect:0 "merge"
      ([ "merge" ] @ gen_flags @ jflags range @ cflags range
      @ [
          "--report-out"; p "merged.json"; "--journal-out"; p "merged.jsonl";
          "--cache-out"; p "merged-cache";
        ])
  in
  let merged = C.read_file (p "merged.json") in
  if not (String.equal base merged) then
    C.fail ck
      "merged report is not byte-identical to the unsharded run (%s vs %s)"
      (p "merged.json") (p "base.json");
  (* 4: re-merging merge's own outputs is a no-op... *)
  let _ =
    run_cli ~expect:0 "remerge"
      ([ "merge" ] @ gen_flags
      @ [
          "--journal"; p "merged.jsonl"; "--cache-dir"; p "merged-cache";
          "--report-out"; p "merged2.json";
        ])
  in
  if not (String.equal merged (C.read_file (p "merged2.json"))) then
    C.fail ck "re-merging the merged artifacts changed the envelope";
  (* ...and stats reads the merged journal like a runner-written one. *)
  let stats_out =
    run_cli ~expect:0 "stats" [ "stats"; "--journal"; p "merged.jsonl" ]
  in
  if not (C.contains ~needle:(Printf.sprintf "%d apps:" gen_count) stats_out)
  then C.fail ck "stats did not reconstruct the merged journal's summary";
  (* 5: a truncated cache entry quarantines (exit 3), never aborts. *)
  let corrupt_dir = p "corrupt-cache" in
  copy_dir (cache victim) corrupt_dir;
  (match Sys.readdir corrupt_dir with
  | [||] -> C.die ck "victim shard %d left an empty cache" victim
  | entries ->
      Out_channel.with_open_bin
        (Filename.concat corrupt_dir entries.(0))
        (fun oc -> Out_channel.output_string oc "{\"torn"));
  let other = List.filter (fun k -> k <> victim) range in
  let _ =
    run_cli ~expect:3 "corrupt"
      ([ "merge" ] @ gen_flags @ jflags range
      @ [ "--cache-dir"; corrupt_dir ]
      @ cflags other
      @ [ "--report-out"; p "corrupt.json" ])
  in
  let corrupt = C.read_file (p "corrupt.json") in
  if not (C.contains ~needle:"merge_degradations" corrupt) then
    C.fail ck "corrupt merge envelope lacks merge_degradations[]";
  if not (C.contains ~needle:"corrupt cache entry quarantined" corrupt) then
    C.fail ck "corrupt cache entry was not quarantined";
  (* 6: a withheld shard is an explicit partial merge (exit 4). *)
  let _ =
    run_cli ~expect:4 "partial"
      ([ "merge" ] @ gen_flags @ jflags other @ cflags other
      @ [
          "--expect-shards"; string_of_int shards; "--report-out";
          p "partial.json";
        ])
  in
  let partial = C.read_file (p "partial.json") in
  if not (C.contains ~needle:"missing_shards" partial) then
    C.fail ck "partial merge envelope lacks missing_shards[]";
  if not (C.contains ~needle:"missing_apps" partial) then
    C.fail ck "partial merge envelope lacks missing_apps[]";
  if ck.C.ck_failures = 0 then remove_tree tmp
  else Fmt.epr "shard_check: intermediate state kept in %s@." tmp

let () =
  match Sys.argv with
  | [| _; exe |] ->
      check exe;
      C.finish ck
  | _ -> C.usage ck "EXTRACTOCOL_BINARY"
