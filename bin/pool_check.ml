(* Build-time guard for the worker pool: drive the real CLI over the
   whole corpus in parallel and require bit-for-bit agreement with the
   sequential runner.

   1. A sequential run (--jobs 1, fresh journal + cache) sets the
      baseline report envelope.
   2. A parallel cold run (--jobs N, its own fresh journal + cache)
      must exit 0 and write a BYTE-identical envelope — completion
      order must never leak into the report.
   3. A parallel run is killed mid-flight by an injected kill-point
      (exit 99: the worker that hits it takes the coordinator down),
      leaving a partial journal and cache.
   4. --resume under --jobs N finishes it; the resumed envelope must
      again be byte-identical to the sequential baseline.

   N comes from POOL_JOBS (default 4, capped at 8); the corpus is much
   larger than any sane N, so some worker always reaches the
   kill-point's per-process phase occurrence count.  Invoked from the
   runtest alias with the extractocol binary's path; all intermediate
   state lives in a private temp directory. *)

module C = Check_common

let ck = C.create "pool_check"

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let check exe =
  let exe =
    if Filename.is_relative exe then Filename.concat (Sys.getcwd ()) exe
    else exe
  in
  let jobs = min 8 (C.env_int ck "POOL_JOBS" ~default:4) in
  let jobs_s = string_of_int jobs in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pool_check.%d" (Unix.getpid ()))
  in
  Sys.mkdir tmp 0o755;
  let p name = Filename.concat tmp name in
  let run_cli ~expect label args =
    let out = p (label ^ ".out") in
    let code =
      Sys.command (Filename.quote_command exe args ~stdout:out ~stderr:out)
    in
    if code <> expect then
      C.fail ck "%s run exited %d, expected %d (see %s)" label code expect out;
    C.read_file out
  in
  (* 1: the sequential baseline. *)
  let _ =
    run_cli ~expect:0 "seq"
      [
        "--all"; "--jobs"; "1"; "--journal"; p "seq-journal.jsonl";
        "--cache-dir"; p "seq-cache"; "--report-out"; p "seq.json";
      ]
  in
  let seq = C.read_file (p "seq.json") in
  (* 2: a cold parallel run must reproduce it exactly. *)
  let _ =
    run_cli ~expect:0 "par"
      [
        "--all"; "--jobs"; jobs_s; "--journal"; p "par-journal.jsonl";
        "--cache-dir"; p "par-cache"; "--report-out"; p "par.json";
      ]
  in
  if not (String.equal seq (C.read_file (p "par.json"))) then
    C.fail ck
      "--jobs %s report is not byte-identical to --jobs 1 (%s vs %s)" jobs_s
      (p "par.json") (p "seq.json");
  (* 3: kill a parallel run mid-flight... *)
  let _ =
    run_cli ~expect:99 "killed"
      [
        "--all"; "--jobs"; jobs_s; "--journal"; p "journal.jsonl";
        "--cache-dir"; p "cache"; "--crash-at"; "pipeline.interpretation@2";
      ]
  in
  (* ...and 4: resume it in parallel. *)
  let resumed_out =
    run_cli ~expect:0 "resumed"
      [
        "--all"; "--jobs"; jobs_s; "--resume"; "--journal"; p "journal.jsonl";
        "--cache-dir"; p "cache"; "--report-out"; p "resumed.json";
      ]
  in
  if not (C.contains ~needle:"[resumed]" resumed_out) then
    C.fail ck "resumed parallel run restored nothing from the journal";
  if not (String.equal seq (C.read_file (p "resumed.json"))) then
    C.fail ck
      "resumed --jobs %s report is not byte-identical to --jobs 1 (%s vs %s)"
      jobs_s (p "resumed.json") (p "seq.json");
  if ck.C.ck_failures = 0 then remove_tree tmp
  else Fmt.epr "pool_check: intermediate state kept in %s@." tmp

let () =
  match Sys.argv with
  | [| _; exe |] ->
      check exe;
      C.finish ck
  | _ -> C.usage ck "EXTRACTOCOL_BINARY"
