(* Build-time guard for demand-driven slicing: drive the real CLI over a
   generated 100-app corpus in both call-graph modes and require
   bit-for-bit agreement.

   1. The default (demand-driven) run writes the baseline report
      envelope and a metrics snapshot.
   2. An --eager-callgraph run with its own cache must write a
      BYTE-identical envelope — laziness must never leak into results.
   3. The demand run's metrics must record callgraph.methods_skipped > 0
      (the corpus always carries unreachable helpers), and the eager
      run's must record exactly 0 — otherwise the "demand" mode silently
      resolved everything and the 5x speedup claim is vacuous.

   Invoked from the runtest alias with the extractocol binary's path;
   all intermediate state lives in a private temp directory.  DEMAND_N
   overrides the generated-corpus size (default 100). *)

module C = Check_common
module Json = Extr_httpmodel.Json

let ck = C.create "demand_check"

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* Pull the count of a counter series out of a --metrics-out snapshot:
   {"metrics":[{"name":...,"kind":...,"labels":{...},"count":N,...},...]} *)
let counter_count t path name =
  let doc = C.load_json t path in
  match C.list_member "metrics" doc with
  | None -> C.die t "%s has no \"metrics\" array" path
  | Some series -> (
      let hit =
        List.find_opt
          (fun s -> C.str_member "name" s = Some name)
          series
      in
      match hit with
      | None -> C.die t "%s has no %s series" path name
      | Some s -> (
          match C.int_member "count" s with
          | Some n -> n
          | None -> C.die t "%s series %s has no integer count" path name))

let check exe =
  let exe =
    if Filename.is_relative exe then Filename.concat (Sys.getcwd ()) exe
    else exe
  in
  let n = C.env_int ck "DEMAND_N" ~default:100 in
  let n_s = string_of_int n in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "demand_check.%d" (Unix.getpid ()))
  in
  Sys.mkdir tmp 0o755;
  let p name = Filename.concat tmp name in
  let run_cli label args =
    let out = p (label ^ ".out") in
    let code =
      Sys.command (Filename.quote_command exe args ~stdout:out ~stderr:out)
    in
    if code <> 0 then
      C.fail ck "%s run exited %d, expected 0 (see %s)" label code out
  in
  (* 1: demand-driven (the default) sets the baseline. *)
  run_cli "demand"
    [
      "--all"; "--gen"; n_s; "--cache-dir"; p "demand-cache";
      "--report-out"; p "demand.json"; "--metrics-out"; p "demand-metrics.json";
    ];
  (* 2: the eager escape hatch must reproduce it exactly. *)
  run_cli "eager"
    [
      "--all"; "--gen"; n_s; "--eager-callgraph"; "--cache-dir"; p "eager-cache";
      "--report-out"; p "eager.json"; "--metrics-out"; p "eager-metrics.json";
    ];
  let demand = C.read_file (p "demand.json") in
  if not (String.equal demand (C.read_file (p "eager.json"))) then
    C.fail ck
      "--eager-callgraph report is not byte-identical to demand-driven (%s vs %s)"
      (p "eager.json") (p "demand.json");
  (* 3: laziness must actually skip something — and only when on. *)
  let skipped = counter_count ck (p "demand-metrics.json") "callgraph.methods_skipped" in
  if skipped <= 0 then
    C.fail ck
      "demand-driven run resolved every method (callgraph.methods_skipped = %d)"
      skipped;
  let eager_skipped =
    counter_count ck (p "eager-metrics.json") "callgraph.methods_skipped"
  in
  if eager_skipped <> 0 then
    C.fail ck "--eager-callgraph reported %d skipped methods, expected 0"
      eager_skipped;
  if ck.C.ck_failures = 0 then remove_tree tmp
  else Fmt.epr "demand_check: intermediate state kept in %s@." tmp

let () =
  match Sys.argv with
  | [| _; exe |] ->
      check exe;
      C.finish ck
  | _ -> C.usage ck "EXTRACTOCOL_BINARY"
