(* Failure injection and pathological-input robustness: the pipeline must
   terminate and degrade gracefully on recursion, infinite loops, deep
   call chains, empty or entry-less apps, and malformed runtime data —
   real APKs contain all of these. *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Prog = Extr_ir.Prog
module Api = Extr_semantics.Api
module Apk = Extr_apk.Apk
module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Http = Extr_httpmodel.Http
module Json = Extr_httpmodel.Json
module Runtime = Extr_runtime.Runtime
module Resilience = Extr_resilience.Resilience
module Chaos = Extr_resilience.Chaos
module Corpus = Extr_corpus.Corpus
module Clock = Extr_telemetry.Clock

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let apk_of ?(entries = []) classes =
  let activities =
    List.filter_map
      (fun (c : Ir.cls) ->
        match c.Ir.c_super with
        | Some s when s = Api.activity -> Some c.Ir.c_name
        | Some _ | None -> None)
      classes
  in
  Apk.make ~package:"com.robust" ~activities
    { Ir.p_classes = classes @ Api.library_classes; p_entries = entries }

let tx_count apk =
  List.length (Pipeline.analyze apk).Pipeline.an_report.Report.rp_transactions

(* Fire one GET so every pathological app still has a protocol surface. *)
let emit_get b uri =
  let client = B.new_obj b Api.default_http_client [] in
  let req = B.new_obj b Api.http_get [ uri ] in
  B.call b
    (B.virtual_call ~ret:(Ir.Obj Api.http_response) client Api.http_client
       "execute" [ B.vl req ])

(* ------------------------------------------------------------------ *)
(* Termination                                                        *)
(* ------------------------------------------------------------------ *)

let test_direct_recursion_terminates () =
  (* onCreate calls a method that recurses unconditionally before firing
     a request; the recursion guard must cut the cycle, and the request
     must still be extracted. *)
  let cls = "com.robust.Rec" in
  let spin =
    B.mk_meth ~cls ~name:"spin" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "spin" []);
        emit_get b (B.vstr "https://r/x");
        B.return_void b)
  in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "spin" []);
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls [ spin; on_create ] ] in
  check Alcotest.int "request found despite recursion" 1 (tx_count apk)

let test_mutual_recursion_terminates () =
  let cls = "com.robust.Mut" in
  let a =
    B.mk_meth ~cls ~name:"a" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "b" []);
        B.return_void b)
  in
  let b_ =
    B.mk_meth ~cls ~name:"b" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "a" []);
        emit_get b (B.vstr "https://r/m");
        B.return_void b)
  in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "a" []);
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls [ a; b_; on_create ] ] in
  check Alcotest.int "request found despite mutual recursion" 1 (tx_count apk)

let test_infinite_loop_bounded () =
  (* while(true) { sb.append(...) }: the interpreter's loop passes are
     bounded; analysis terminates and the loop-built URI is widened. *)
  let cls = "com.robust.Loop" in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        let sb = B.new_obj b Api.string_builder [ B.vstr "https://r/l?" ] in
        B.while_ b
          (fun b -> B.vl (B.define b Ir.Bool (Ir.Val (B.vbool true))))
          (fun b ->
            ignore
              (B.call_ret b (Ir.Obj Api.string_builder)
                 (B.virtual_call
                    ~ret:(Ir.Obj Api.string_builder)
                    sb Api.string_builder "append" [ B.vstr "&x=1" ])));
        let uri =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
        in
        emit_get b (B.vl uri);
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls [ on_create ] ] in
  let report = (Pipeline.analyze apk).Pipeline.an_report in
  match report.Report.rp_transactions with
  | [ tr ] ->
      let regex =
        Extr_siglang.Strsig.to_regex tr.Report.tr_request.Extr_siglang.Msgsig.rs_uri
      in
      check Alcotest.bool "loop part widened to a repetition" true
        (let rec contains i =
           i + 7 <= String.length regex
           && (String.sub regex i 7 = "(&x=1)*" || contains (i + 1))
         in
         contains 0)
  | txs -> Alcotest.failf "expected 1 transaction, got %d" (List.length txs)

let test_deep_call_chain_bounded () =
  (* A call chain deeper than io_max_depth: analysis terminates; the
     request at the bottom is out of reach (bounded inlining), which is a
     documented under-approximation, not a crash. *)
  let cls = "com.robust.Deep" in
  let depth = 40 in
  let meths =
    List.init depth (fun i ->
        B.mk_meth ~cls ~name:(Printf.sprintf "f%d" i) ~params:[] ~ret:Ir.Void
          (fun b ->
            (if i + 1 < depth then
               B.call b
                 (B.virtual_call (Ir.this_var cls) cls
                    (Printf.sprintf "f%d" (i + 1))
                    [])
             else emit_get b (B.vstr "https://r/deep"));
            B.return_void b))
  in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        B.call b (B.virtual_call (Ir.this_var cls) cls "f0" []);
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls (meths @ [ on_create ]) ] in
  (* Termination is the assertion; the count depends on the depth bound. *)
  let n = tx_count apk in
  check Alcotest.bool "terminates" true (n >= 0)

(* ------------------------------------------------------------------ *)
(* Degenerate apps                                                    *)
(* ------------------------------------------------------------------ *)

let test_empty_app () =
  let apk = apk_of [] in
  check Alcotest.int "no transactions" 0 (tx_count apk)

let test_app_without_entries () =
  (* A class with a request but no lifecycle entry and no registration:
     nothing executes, nothing is extracted. *)
  let cls = "com.robust.Orphan" in
  let m =
    B.mk_meth ~cls ~name:"fetch" ~params:[] ~ret:Ir.Void (fun b ->
        emit_get b (B.vstr "https://r/o");
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls cls [ m ] ] in
  check Alcotest.int "unreachable request not extracted" 0 (tx_count apk)

let test_unreachable_code_ignored () =
  let cls = "com.robust.Dead" in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        emit_get b (B.vstr "https://r/live");
        B.return_void b;
        (* Statements after return are unreachable. *)
        emit_get b (B.vstr "https://r/dead");
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls [ on_create ] ] in
  check Alcotest.int "only the live request" 1 (tx_count apk)

(* ------------------------------------------------------------------ *)
(* Runtime failure injection                                          *)
(* ------------------------------------------------------------------ *)

let test_runtime_error_responses () =
  (* A network that always answers 500 with garbage: the concrete runtime
     must finish the launch and record the failing transactions. *)
  let cls = "com.robust.Err" in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        let client = B.new_obj b Api.default_http_client [] in
        let req = B.new_obj b Api.http_get [ B.vstr "https://r/e" ] in
        let resp =
          B.call_ret b (Ir.Obj Api.http_response)
            (B.virtual_call ~ret:(Ir.Obj Api.http_response) client
               Api.http_client "execute" [ B.vl req ])
        in
        let entity =
          B.call_ret b (Ir.Obj Api.http_entity)
            (B.virtual_call ~ret:(Ir.Obj Api.http_entity) resp
               Api.http_response "getEntity" [])
        in
        let body =
          B.call_ret b Ir.Str
            (B.static_call ~ret:Ir.Str Api.entity_utils "toString"
               [ B.vl entity ])
        in
        (* Parse the garbage as JSON and read a member: must not raise. *)
        let j = B.new_obj b Api.json_object [ B.vl body ] in
        let v =
          B.call_ret b Ir.Str
            (B.virtual_call ~ret:Ir.Str j Api.json_object "getString"
               [ B.vstr "missing" ])
        in
        ignore v;
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls [ on_create ] ] in
  let net (_ : Http.request) =
    Http.response ~status:500 (Http.Text "<<<not json>>>")
  in
  let rt = Runtime.create ~net ~input:(fun () -> "") apk in
  ignore (Runtime.launch rt);
  let trace = Runtime.captured_trace rt in
  check Alcotest.int "failing transaction captured" 1
    (List.length trace.Http.tr_entries);
  match trace.Http.tr_entries with
  | [ e ] ->
      check Alcotest.int "status recorded" 500
        e.Http.te_tx.Http.tx_response.Http.resp_status
  | _ -> Alcotest.fail "trace shape"

let test_runtime_malformed_uri () =
  (* The app builds a URI from user text that is not a URI at all: the
     runtime skips the request rather than crashing. *)
  let cls = "com.robust.BadUri" in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        emit_get b (B.vstr "::this is not a uri::");
        B.return_void b)
  in
  let apk = apk_of [ B.mk_cls ~super:Api.activity cls [ on_create ] ] in
  let net (_ : Http.request) = Http.response (Http.Text "ok") in
  let rt = Runtime.create ~net ~input:(fun () -> "") apk in
  ignore (Runtime.launch rt);
  let trace = Runtime.captured_trace rt in
  check Alcotest.int "no transaction for a malformed URI" 0
    (List.length trace.Http.tr_entries)

(* ------------------------------------------------------------------ *)
(* Resource governance (budgets, degradation ledger)                  *)
(* ------------------------------------------------------------------ *)

let limits ?(steps = max_int) ?(depth = 24) ?deadline () =
  {
    Resilience.Budget.bl_max_steps = steps;
    bl_max_depth = depth;
    bl_deadline_s = deadline;
  }

let test_budget_step_fuel () =
  let b = Resilience.Budget.create ~limits:(limits ~steps:10 ()) () in
  for _ = 1 to 10 do
    check Alcotest.bool "within fuel" true (Resilience.Budget.spend b)
  done;
  check Alcotest.bool "11th step refused" false (Resilience.Budget.spend b);
  check Alcotest.bool "trip is sticky" false (Resilience.Budget.spend b);
  check Alcotest.bool "not alive" false (Resilience.Budget.alive b);
  check Alcotest.bool "steps exhaustion" true
    (Resilience.Budget.exhaustion b = Some Resilience.Budget.Steps)

let test_budget_deadline_manual_clock () =
  let clock, advance = Clock.manual () in
  let b =
    Resilience.Budget.create ~clock ~limits:(limits ~deadline:5.0 ()) ()
  in
  (* Time stands still: thousands of steps pass the periodic poll. *)
  for _ = 1 to 5_000 do
    check Alcotest.bool "before deadline" true (Resilience.Budget.spend b)
  done;
  advance 10.0;
  (* The deadline is polled every 4096 steps, so the trip lands within
     one poll window of the clock advancing. *)
  let tripped = ref false in
  (try
     for _ = 1 to 4_096 do
       if not (Resilience.Budget.spend b) then begin
         tripped := true;
         raise Exit
       end
     done
   with Exit -> ());
  check Alcotest.bool "deadline tripped within a poll window" true !tripped;
  check Alcotest.bool "deadline exhaustion" true
    (Resilience.Budget.exhaustion b = Some Resilience.Budget.Deadline)

let test_budget_depth_not_sticky () =
  let b = Resilience.Budget.create ~limits:(limits ~depth:3 ()) () in
  check Alcotest.bool "shallow call ok" true
    (Resilience.Budget.depth_ok b ~depth:3);
  check Alcotest.bool "deep call clipped" false
    (Resilience.Budget.depth_ok b ~depth:4);
  check Alcotest.bool "clipping remembered" true
    (Resilience.Budget.depth_clipped b);
  check Alcotest.bool "clipping does not kill the budget" true
    (Resilience.Budget.alive b);
  check Alcotest.bool "shallow calls still ok after a clip" true
    (Resilience.Budget.depth_ok b ~depth:2)

let test_degrade_ledger_coalesces () =
  let ledger = Resilience.Degrade.create () in
  Resilience.Degrade.record ~ledger ~phase:"slicing.backward"
    ~reason:"step-budget-exhausted" ~work_left:3 "first bail";
  Resilience.Degrade.record ~ledger ~phase:"slicing.backward"
    ~reason:"step-budget-exhausted" ~work_left:4 "second bail";
  Resilience.Degrade.record ~ledger ~phase:"interpretation"
    ~reason:"deadline-exceeded" "different phase";
  match Resilience.Degrade.items ledger with
  | [ first; second ] ->
      check Alcotest.string "coalesced phase" "slicing.backward"
        first.Resilience.Degrade.dg_phase;
      check Alcotest.int "work_left summed" 7
        first.Resilience.Degrade.dg_work_left;
      check Alcotest.string "distinct phase kept" "interpretation"
        second.Resilience.Degrade.dg_phase
  | items -> Alcotest.failf "expected 2 ledger entries, got %d" (List.length items)

(* A busy app: enough slicing and interpretation work that a starved
   budget trips in every engine. *)
let busy_apk () =
  let cls = "com.robust.Busy" in
  let on_create =
    B.mk_meth ~cls ~name:"onCreate" ~params:[] ~ret:Ir.Void (fun b ->
        List.iter
          (fun i ->
            let sb =
              B.new_obj b Api.string_builder
                [ B.vstr (Printf.sprintf "https://r/busy/%d?" i) ]
            in
            List.iter
              (fun j ->
                ignore
                  (B.call_ret b (Ir.Obj Api.string_builder)
                     (B.virtual_call
                        ~ret:(Ir.Obj Api.string_builder)
                        sb Api.string_builder "append"
                        [ B.vstr (Printf.sprintf "&p%d=%d" j j) ])))
              (List.init 8 Fun.id);
            let uri =
              B.call_ret b Ir.Str
                (B.virtual_call ~ret:Ir.Str sb Api.string_builder "toString" [])
            in
            emit_get b (B.vl uri))
          (List.init 6 Fun.id);
        B.return_void b)
  in
  apk_of [ B.mk_cls ~super:Api.activity cls [ on_create ] ]

let analyze_with_limits apk l =
  Pipeline.analyze
    ~options:{ Pipeline.default_options with op_limits = l }
    apk

let test_starved_pipeline_degrades () =
  (* A 50-step budget cannot finish anything, but the pipeline must
     return a report — degraded and honest about it — not raise. *)
  let analysis = analyze_with_limits (busy_apk ()) (limits ~steps:50 ()) in
  let report = analysis.Pipeline.an_report in
  check Alcotest.bool "degradations reported" true
    (report.Report.rp_degradations <> []);
  List.iter
    (fun (d : Resilience.Degrade.degradation) ->
      check Alcotest.string "reason is the step trip" "step-budget-exhausted"
        d.Resilience.Degrade.dg_reason)
    report.Report.rp_degradations

let test_default_limits_do_not_degrade () =
  (* The same app under default limits: governance must be invisible. *)
  let analysis =
    analyze_with_limits (busy_apk ()) Resilience.Budget.default_limits
  in
  let report = analysis.Pipeline.an_report in
  check Alcotest.int "no degradations at default limits" 0
    (List.length report.Report.rp_degradations);
  check Alcotest.int "all requests extracted" 6
    (List.length report.Report.rp_transactions);
  check Alcotest.bool "no transaction flagged degraded" false
    (List.exists
       (fun tr -> tr.Report.tr_degraded)
       report.Report.rp_transactions)

let test_degradations_in_report_json () =
  let analysis = analyze_with_limits (busy_apk ()) (limits ~steps:50 ()) in
  let json = Report.to_json analysis.Pipeline.an_report in
  match Json.member "degradations" json with
  | Some (Json.List (d :: _)) ->
      check Alcotest.bool "degradation has a phase" true
        (Json.member "phase" d <> None);
      check Alcotest.bool "degradation has a reason" true
        (Json.member "reason" d <> None);
      check Alcotest.bool "degradation has work_left" true
        (Json.member "work_left" d <> None)
  | Some (Json.List []) -> Alcotest.fail "degradations member empty"
  | Some _ -> Alcotest.fail "degradations member is not a list"
  | None -> Alcotest.fail "no degradations member in report JSON"

let test_standalone_engines_keep_historical_bounds () =
  (* Engines called outside the pipeline (tests, direct API use) get
     private fuel-only budgets matching the historical constants, so a
     plain [analyze] and a tiny standalone program behave as before. *)
  let apk = busy_apk () in
  let report = (Pipeline.analyze apk).Pipeline.an_report in
  check Alcotest.int "direct analyze unchanged" 6
    (List.length report.Report.rp_transactions)

(* ------------------------------------------------------------------ *)
(* Chaos properties                                                   *)
(* ------------------------------------------------------------------ *)

let chaos_limits = limits ~steps:2_000_000 ~deadline:10.0 ()

let test_chaos_mutants_never_raise () =
  (* Property over seeds: however the APK is corrupted, [analyze] run
     behind the barrier returns [Ok] — it degrades, it never raises. *)
  let entry = List.hd (Corpus.case_studies ()) in
  let apk = Lazy.force entry.Corpus.c_apk in
  List.iter
    (fun seed ->
      let mutant, mutations = Chaos.mutate ~seed apk in
      match
        Resilience.Barrier.protect ~app:"mutant" (fun () ->
            analyze_with_limits mutant chaos_limits)
      with
      | Ok _ -> ()
      | Error crash ->
          Alcotest.failf "seed %d [%s] escaped: %a" seed
            (String.concat "+" (List.map Chaos.mutation_name mutations))
            Resilience.Barrier.pp_crash crash)
    (List.init 20 (fun i -> i + 1))

let test_chaos_mutations_deterministic () =
  let entry = List.hd (Corpus.case_studies ()) in
  let apk = Lazy.force entry.Corpus.c_apk in
  let _, m1 = Chaos.mutate ~seed:7 apk in
  let _, m2 = Chaos.mutate ~seed:7 apk in
  check
    Alcotest.(list string)
    "same seed, same mutations"
    (List.map Chaos.mutation_name m1)
    (List.map Chaos.mutation_name m2)

let test_barrier_captures_crash_phase () =
  Resilience.Barrier.set_phase "init";
  match
    Resilience.Barrier.protect ~app:"boom" (fun () ->
        Resilience.Barrier.set_phase "pipeline.slicing";
        failwith "injected")
  with
  | Ok _ -> Alcotest.fail "expected a crash"
  | Error crash ->
      check Alcotest.string "app attributed" "boom"
        crash.Resilience.Barrier.cr_app;
      check Alcotest.string "phase attributed" "pipeline.slicing"
        crash.Resilience.Barrier.cr_phase;
      check Alcotest.bool "exception class captured" true
        (String.length crash.Resilience.Barrier.cr_exn > 0)

let () =
  Alcotest.run "robustness"
    [
      ( "termination",
        [
          tc "direct recursion" test_direct_recursion_terminates;
          tc "mutual recursion" test_mutual_recursion_terminates;
          tc "infinite loop widened" test_infinite_loop_bounded;
          tc "deep call chain" test_deep_call_chain_bounded;
        ] );
      ( "degenerate apps",
        [
          tc "empty app" test_empty_app;
          tc "no entries" test_app_without_entries;
          tc "unreachable code" test_unreachable_code_ignored;
        ] );
      ( "runtime failures",
        [
          tc "error responses" test_runtime_error_responses;
          tc "malformed uri" test_runtime_malformed_uri;
        ] );
      ( "resource governance",
        [
          tc "step fuel trips and sticks" test_budget_step_fuel;
          tc "deadline under a manual clock" test_budget_deadline_manual_clock;
          tc "depth clipping is not sticky" test_budget_depth_not_sticky;
          tc "ledger coalesces repeats" test_degrade_ledger_coalesces;
          tc "starved pipeline degrades" test_starved_pipeline_degrades;
          tc "default limits are invisible" test_default_limits_do_not_degrade;
          tc "degradations in report JSON" test_degradations_in_report_json;
          tc "standalone engines unchanged"
            test_standalone_engines_keep_historical_bounds;
        ] );
      ( "chaos",
        [
          tc "mutants never raise" test_chaos_mutants_never_raise;
          tc "mutation is deterministic" test_chaos_mutations_deterministic;
          tc "barrier attributes crashes" test_barrier_captures_crash_phase;
        ] );
    ]
