(* The durability layer: degrade-and-retry ladder, write-ahead journal,
   content-addressed result cache, and the corpus runner that composes
   them.  Retry backoff is asserted against the recording clock — no
   real sleeps — and runner scenarios (kill/resume byte-identity, warm
   cache, quarantine, exit codes) run in-process over a two-app corpus
   subset with throwaway temp directories. *)

module Corpus = Extr_corpus.Corpus
module Spec = Extr_corpus.Spec
module Resilience = Extr_resilience.Resilience
module Budget = Resilience.Budget
module Barrier = Resilience.Barrier
module Retry = Extr_resilience.Retry
module Journal = Extr_resilience.Journal
module Store = Extr_store.Store
module Runner = Extr_eval.Runner
module Clock = Extr_telemetry.Clock
module Metrics = Extr_telemetry.Metrics
module Export = Extr_telemetry.Export
module Json = Extr_httpmodel.Json

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let tmp_dir () =
  let f = Filename.temp_file "durability" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let base_limits =
  { Budget.bl_max_steps = 1000; bl_max_depth = 10; bl_deadline_s = Some 1.0 }

let crash phase =
  { Barrier.cr_app = "x"; cr_exn = "boom"; cr_phase = phase; cr_backtrace = "" }

(* ------------------------------------------------------------------ *)
(* Retry ladder                                                       *)
(* ------------------------------------------------------------------ *)

let test_escalate () =
  let e = Retry.escalate Retry.default_policy base_limits in
  check Alcotest.int "steps multiplied" 4000 e.Budget.bl_max_steps;
  check Alcotest.int "depth widened" 18 e.Budget.bl_max_depth;
  check
    Alcotest.(option (float 1e-9))
    "deadline multiplied" (Some 2.0) e.Budget.bl_deadline_s;
  let huge =
    { Budget.bl_max_steps = max_int; bl_max_depth = max_int; bl_deadline_s = None }
  in
  let e = Retry.escalate Retry.default_policy huge in
  check Alcotest.int "steps saturate" max_int e.Budget.bl_max_steps;
  check Alcotest.int "depth saturates" max_int e.Budget.bl_max_depth;
  check Alcotest.(option (float 1e-9)) "no deadline stays off" None
    e.Budget.bl_deadline_s

let test_ladder_escalates_then_succeeds () =
  let sleep, slept = Clock.sleep_recording () in
  let seen = ref [] in
  let reasons = ref [] in
  let attempt ~attempt limits =
    seen := (attempt, limits) :: !seen;
    if attempt < 2 then Result.Ok (Retry.Degraded attempt)
    else Result.Ok (Retry.Clean attempt)
  in
  (match
     Retry.run ~sleep
       ~on_retry:(fun ~attempt:_ ~reason -> reasons := reason :: !reasons)
       Retry.default_policy ~limits:base_limits ~attempt
   with
  | Retry.Succeeded (v, n) ->
      check Alcotest.int "attempts used" 2 n;
      check Alcotest.int "last attempt's value" 2 v
  | _ -> Alcotest.fail "expected Succeeded");
  check Alcotest.(list (float 1e-9)) "one base backoff" [ 0.05 ] (slept ());
  check Alcotest.(list string) "retry reason" [ "budget-exhausted" ] !reasons;
  match List.rev !seen with
  | [ (1, l1); (2, l2) ] ->
      check Alcotest.int "first rung at base limits" 1000 l1.Budget.bl_max_steps;
      check Alcotest.int "second rung escalated" 4000 l2.Budget.bl_max_steps;
      check Alcotest.int "depth escalated" 18 l2.Budget.bl_max_depth
  | _ -> Alcotest.fail "expected exactly two attempts"

let test_ladder_exhausts_still_degraded () =
  let sleep, slept = Clock.sleep_recording () in
  let attempt ~attempt _ = Result.Ok (Retry.Degraded attempt) in
  (match Retry.run ~sleep Retry.default_policy ~limits:base_limits ~attempt with
  | Retry.Still_degraded (v, n) ->
      check Alcotest.int "all attempts spent" 3 n;
      check Alcotest.int "largest-budget result returned" 3 v
  | _ -> Alcotest.fail "expected Still_degraded");
  (* Deterministic exponential backoff, recorded not slept. *)
  check Alcotest.(list (float 1e-9)) "doubling backoff" [ 0.05; 0.1 ] (slept ())

let test_crash_retried_once_then_quarantined () =
  let sleep, slept = Clock.sleep_recording () in
  let seen = ref [] in
  let reasons = ref [] in
  let attempt ~attempt limits =
    seen := (attempt, limits) :: !seen;
    Result.Error (crash "pipeline.interpretation")
  in
  (match
     Retry.run ~sleep
       ~on_retry:(fun ~attempt:_ ~reason -> reasons := reason :: !reasons)
       Retry.default_policy ~limits:base_limits ~attempt
   with
  | Retry.Quarantined (c, n) ->
      check Alcotest.int "one retry granted" 2 n;
      check Alcotest.string "crash phase kept" "pipeline.interpretation"
        c.Barrier.cr_phase
  | _ -> Alcotest.fail "expected Quarantined");
  check Alcotest.(list (float 1e-9)) "one backoff" [ 0.05 ] (slept ());
  check
    Alcotest.(list string)
    "crash reason carries the phase"
    [ "crash:pipeline.interpretation" ]
    !reasons;
  (* A crash is not a budget problem: the retry keeps the same limits. *)
  match !seen with
  | [ (2, l2); (1, l1) ] ->
      check Alcotest.int "limits unchanged" l1.Budget.bl_max_steps
        l2.Budget.bl_max_steps
  | _ -> Alcotest.fail "expected exactly two attempts"

let test_no_retry_policy () =
  let sleep, slept = Clock.sleep_recording () in
  let calls = ref 0 in
  let attempt ~attempt:_ _ =
    incr calls;
    Result.Ok (Retry.Degraded ())
  in
  (match Retry.run ~sleep Retry.no_retry ~limits:base_limits ~attempt with
  | Retry.Still_degraded ((), 1) -> ()
  | _ -> Alcotest.fail "expected Still_degraded after one attempt");
  check Alcotest.int "single attempt" 1 !calls;
  check Alcotest.(list (float 1e-9)) "no backoff" [] (slept ())

(* ------------------------------------------------------------------ *)
(* Journal                                                            *)
(* ------------------------------------------------------------------ *)

let ev_started app =
  Journal.Started { ev_app = app; ev_key = String.make 32 'a'; ev_attempt = 1 }

let ev_finished ?(status = "ok") app =
  Journal.Finished
    {
      ev_app = app;
      ev_key = String.make 32 'a';
      ev_status = status;
      ev_cached = false;
      ev_attempts = 1;
      ev_txs = 4;
    }

let render ev = Fmt.str "%a" Journal.pp_event ev

let test_journal_round_trip () =
  let path = Filename.temp_file "journal" ".jsonl" in
  let j = Journal.create ~path ~config:"cfg-1" () in
  let events =
    [
      ev_started "app-a";
      Journal.Crashed
        { ev_app = "app-a"; ev_phase = "pipeline.slicing"; ev_exn = "boom" };
      Journal.Retried
        { ev_app = "app-a"; ev_attempt = 2; ev_reason = "crash:pipeline.slicing" };
      ev_finished "app-a";
    ]
  in
  List.iter (Journal.append j) events;
  match Journal.load ~path ~config:"cfg-1" () with
  | Error e -> Alcotest.fail e
  | Ok (_, loaded, _) ->
      check
        Alcotest.(list string)
        "events survive the round trip" (List.map render events)
        (List.map render loaded);
      (match Journal.finished loaded with
      | [ ("app-a", Journal.Finished f) ] ->
          check Alcotest.string "status" "ok" f.ev_status;
          check Alcotest.int "txs" 4 f.ev_txs
      | _ -> Alcotest.fail "expected one finished app")

let test_journal_config_mismatch_refused () =
  let path = Filename.temp_file "journal" ".jsonl" in
  let j = Journal.create ~path ~config:"cfg-1" () in
  Journal.append j (ev_started "app-a");
  (match Journal.load ~path ~config:"cfg-2" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a different configuration must refuse to resume");
  match Journal.load ~path:(path ^ ".missing") ~config:"cfg-1" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a missing journal must be an error"

let test_journal_skips_torn_trailing_line () =
  let path = Filename.temp_file "journal" ".jsonl" in
  let j = Journal.create ~path ~config:"cfg-1" () in
  Journal.append j (ev_started "app-a");
  Journal.append j (ev_finished "app-a");
  (* A kill mid-append on a non-atomic filesystem: garbage and a torn
     half-record after the valid lines. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "not json at all\n{\"event\":\"finis";
  close_out oc;
  match Journal.load ~path ~config:"cfg-1" () with
  | Error e -> Alcotest.fail e
  | Ok (_, loaded, _) ->
      check Alcotest.int "valid records kept, torn ones skipped" 2
        (List.length loaded)

let test_journal_append_after_load () =
  (* load must truncate a torn tail and position appends after the last
     valid record, so a resumed coordinator keeps writing the same
     journal in place (O(1) appends, no rewrite). *)
  let path = Filename.temp_file "journal" ".jsonl" in
  let j = Journal.create ~path ~config:"cfg-1" () in
  Journal.append j (ev_started "app-a");
  Journal.append j (ev_finished "app-a");
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"event\":\"finis";
  close_out oc;
  (match Journal.load ~path ~config:"cfg-1" () with
  | Error e -> Alcotest.fail e
  | Ok (j2, loaded, _) ->
      check Alcotest.int "torn tail dropped" 2 (List.length loaded);
      Journal.append j2 (ev_started "app-b"));
  match Journal.load ~path ~config:"cfg-1" () with
  | Error e -> Alcotest.fail e
  | Ok (_, loaded, _) ->
      check
        Alcotest.(list string)
        "append lands after the surviving records"
        (List.map render [ ev_started "app-a"; ev_finished "app-a"; ev_started "app-b" ])
        (List.map render loaded)

(* Mid-file corruption: unlike a torn tail (the normal kill shape,
   silently dropped), a record damaged in the middle of the file is
   reported as an anomaly — and never raises. *)

let file_lines path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")

let write_lines path lines =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun l ->
          Out_channel.output_string oc l;
          Out_channel.output_char oc '\n')
        lines)

let four_record_journal path =
  let j = Journal.create ~path ~config:"cfg-1" () in
  List.iter (Journal.append j)
    [ ev_started "a"; ev_finished "a"; ev_started "b"; ev_finished "b" ]

let flip_byte_mid s =
  let b = Bytes.of_string s in
  let i = String.length s / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  Bytes.to_string b

let test_journal_midfile_bitflip_reported () =
  let path = Filename.temp_file "journal" ".jsonl" in
  four_record_journal path;
  (match file_lines path with
  | header :: r1 :: rest -> write_lines path (header :: flip_byte_mid r1 :: rest)
  | _ -> Alcotest.fail "journal too short");
  (match Journal.read ~path with
  | Error e -> Alcotest.fail e
  | Ok (_, events, anomalies) ->
      check Alcotest.int "corrupt record dropped, rest kept" 3
        (List.length events);
      check Alcotest.int "one anomaly reported" 1 (List.length anomalies));
  (* load agrees: report-and-continue, never refuse the journal. *)
  match Journal.load ~path ~config:"cfg-1" () with
  | Error e -> Alcotest.fail e
  | Ok (_, loaded, anomalies) ->
      check Alcotest.int "load drops the same record" 3 (List.length loaded);
      check Alcotest.int "load reports the same anomaly" 1
        (List.length anomalies)

let test_journal_duplicated_line_tolerated () =
  let path = Filename.temp_file "journal" ".jsonl" in
  four_record_journal path;
  (match file_lines path with
  | header :: r1 :: rest -> write_lines path (header :: r1 :: r1 :: rest)
  | _ -> Alcotest.fail "journal too short");
  match Journal.read ~path with
  | Error e -> Alcotest.fail e
  | Ok (_, events, anomalies) ->
      (* The duplicate is a valid sealed record: it replays (last record
         wins downstream) without counting as corruption. *)
      check Alcotest.int "all records incl. duplicate load" 5
        (List.length events);
      check Alcotest.int "no anomaly" 0 (List.length anomalies)

let test_journal_interleaved_partial_record () =
  let path = Filename.temp_file "journal" ".jsonl" in
  four_record_journal path;
  (match file_lines path with
  | header :: r1 :: rest ->
      (* A partial record WITH its newline in the middle of the file:
         not the torn-tail shape, so it must be reported. *)
      write_lines path (header :: r1 :: "{\"event\":\"finis" :: rest)
  | _ -> Alcotest.fail "journal too short");
  (match Journal.read ~path with
  | Error e -> Alcotest.fail e
  | Ok (_, events, anomalies) ->
      check Alcotest.int "surrounding records survive" 4 (List.length events);
      check Alcotest.int "partial record reported" 1 (List.length anomalies));
  match Journal.load ~path ~config:"cfg-1" () with
  | Error e -> Alcotest.fail e
  | Ok (j2, _, _) -> Journal.append j2 (ev_started "c")

let test_journal_legacy_unsealed_accepted () =
  let path = Filename.temp_file "journal" ".jsonl" in
  Journal.set_integrity false;
  four_record_journal path;
  Journal.set_integrity true;
  match Journal.read ~path with
  | Error e -> Alcotest.fail e
  | Ok (config, events, anomalies) ->
      check Alcotest.string "header config" "cfg-1" config;
      check Alcotest.int "unsealed records accepted" 4 (List.length events);
      check Alcotest.int "no anomaly for legacy records" 0
        (List.length anomalies)

let test_journal_finished_excludes_restarted () =
  let events =
    [ ev_started "a"; ev_finished "a"; ev_started "b"; ev_finished "b";
      ev_started "a" (* a started again after finishing *) ]
  in
  check
    Alcotest.(list string)
    "only apps whose last record is finished" [ "b" ]
    (List.map fst (Journal.finished events))

(* ------------------------------------------------------------------ *)
(* Content-addressed store                                            *)
(* ------------------------------------------------------------------ *)

let corpus_apk n = Lazy.force (List.nth (Corpus.table1 ()) n).Corpus.c_apk

let test_key_sensitivity () =
  let apk1 = corpus_apk 0 and apk2 = corpus_apk 1 in
  check Alcotest.bool "same input, same key" true
    (Store.key ~config:"c" apk1 = Store.key ~config:"c" apk1);
  check Alcotest.bool "config moves the key" false
    (Store.key ~config:"c" apk1 = Store.key ~config:"c'" apk1);
  check Alcotest.bool "analysis version moves the key" false
    (Store.key ~version:1 ~config:"c" apk1
    = Store.key ~version:2 ~config:"c" apk1);
  check Alcotest.bool "program moves the key" false
    (Store.key ~config:"c" apk1 = Store.key ~config:"c" apk2)

let test_key_of_string () =
  let k = Store.key ~config:"c" (corpus_apk 0) in
  (match Store.key_of_string (Store.key_to_string k) with
  | Some k' -> check Alcotest.bool "round trip" true (k = k')
  | None -> Alcotest.fail "a real key must validate");
  check Alcotest.bool "wrong length rejected" true
    (Store.key_of_string "abc123" = None);
  check Alcotest.bool "non-hex rejected" true
    (Store.key_of_string (String.make 32 'z') = None)

let test_store_round_trip_and_metrics () =
  let t = Store.open_ ~dir:(Filename.concat (tmp_dir ()) "cache") () in
  let k = Store.key ~config:"c" (corpus_apk 0) in
  Metrics.set_enabled Metrics.default true;
  Metrics.reset Metrics.default;
  check Alcotest.(option string) "miss before store" None (Store.find t k);
  Store.store t k "{\"payload\":1}";
  check
    Alcotest.(option string)
    "hit after store" (Some "{\"payload\":1}") (Store.find t k);
  let count name =
    List.fold_left
      (fun acc (s : Metrics.sample) ->
        if s.Metrics.sa_name = name then acc + s.Metrics.sa_count else acc)
      0
      (Metrics.snapshot Metrics.default)
  in
  check Alcotest.int "one miss counted" 1 (count "cache.misses");
  check Alcotest.int "one hit counted" 1 (count "cache.hits");
  Metrics.set_enabled Metrics.default false

let test_store_seal_round_trip () =
  check (Alcotest.result Alcotest.string Alcotest.string) "seal round-trips"
    (Ok "{\"payload\":1}")
    (Store.decode (Store.seal "{\"payload\":1}"));
  check (Alcotest.result Alcotest.string Alcotest.string)
    "headerless legacy entry passes through" (Ok "{\"legacy\":true}")
    (Store.decode "{\"legacy\":true}");
  match Store.decode (flip_byte_mid (Store.seal "{\"payload\":1}")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a flipped sealed entry must not decode"

let test_store_corrupt_entry_heals () =
  let dir = Filename.concat (tmp_dir ()) "cache" in
  let t = Store.open_ ~dir () in
  let k = Store.key ~config:"c" (corpus_apk 0) in
  Store.store t k "{\"payload\":1}";
  (* Rot the entry on disk: the next read must degrade to a miss, and
     re-storing must heal it. *)
  let path = Filename.concat dir (Store.key_to_string k ^ ".json") in
  let raw = In_channel.with_open_text path In_channel.input_all in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (flip_byte_mid raw));
  check Alcotest.(option string) "corrupt entry reads as a miss" None
    (Store.find t k);
  Store.store t k "{\"payload\":1}";
  check
    Alcotest.(option string)
    "re-store heals the entry" (Some "{\"payload\":1}") (Store.find t k)

let test_store_audit () =
  let dir = Filename.concat (tmp_dir ()) "cache" in
  let t = Store.open_ ~dir () in
  let k1 = Store.key ~config:"c" (corpus_apk 0) in
  let k2 = Store.key ~config:"c" (corpus_apk 1) in
  Store.store t k1 "{\"payload\":1}";
  Store.store t k2 "{\"payload\":2}";
  check (Alcotest.pair Alcotest.int (Alcotest.list Alcotest.(pair string string)))
    "clean cache audits clean" (2, [])
    (Store.audit ~dir);
  let victim = Filename.concat dir (Store.key_to_string k1 ^ ".json") in
  let raw = In_channel.with_open_text victim In_channel.input_all in
  Out_channel.with_open_text victim (fun oc ->
      Out_channel.output_string oc (flip_byte_mid raw));
  let total, corrupt = Store.audit ~dir in
  check Alcotest.int "all entries checked" 2 total;
  match corrupt with
  | [ (name, _) ] ->
      check Alcotest.string "the rotted entry is named"
        (Store.key_to_string k1 ^ ".json")
        name
  | l -> Alcotest.failf "expected 1 corrupt entry, got %d" (List.length l)

let test_sweep_orphaned_temps () =
  let dir = tmp_dir () in
  let write name contents =
    Out_channel.with_open_text (Filename.concat dir name) (fun oc ->
        Out_channel.output_string oc contents)
  in
  write ".orphan.json.123.1.abc123.tmp" "{\"half";
  write ".fresh.json.124.2.def456.tmp" "{\"half";
  write "keep.json" "{}";
  (* Age the orphan past the sweep floor; the fresh temp stays young
     (a live writer's interim file must survive the sweep). *)
  let old = Unix.gettimeofday () -. 7200.0 in
  Unix.utimes (Filename.concat dir ".orphan.json.123.1.abc123.tmp") old old;
  let swept = Export.sweep_temps ~dir () in
  check Alcotest.int "one orphan swept" 1 swept;
  check Alcotest.bool "stale orphan removed" false
    (Sys.file_exists (Filename.concat dir ".orphan.json.123.1.abc123.tmp"));
  check Alcotest.bool "fresh temp kept" true
    (Sys.file_exists (Filename.concat dir ".fresh.json.124.2.def456.tmp"));
  check Alcotest.bool "real artifact kept" true
    (Sys.file_exists (Filename.concat dir "keep.json"));
  (* Store.open_ runs the same sweep on startup. *)
  Unix.utimes (Filename.concat dir ".fresh.json.124.2.def456.tmp") old old;
  ignore (Store.open_ ~dir ());
  check Alcotest.bool "open_ sweeps aged temps" false
    (Sys.file_exists (Filename.concat dir ".fresh.json.124.2.def456.tmp"))

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)
(* ------------------------------------------------------------------ *)

(* Two small corpus apps keep the in-process scenarios fast. *)
let entries () =
  match Corpus.table1 () with
  | a :: b :: _ -> [ a; b ]
  | _ -> Alcotest.fail "corpus too small"

let quiet_options () =
  {
    Runner.default_options with
    Runner.ro_sleep = fst (Clock.sleep_recording ());
  }

let run_ok options entries =
  match Runner.run options entries with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_runner_clean_run () =
  let r = run_ok (quiet_options ()) (entries ()) in
  check Alcotest.int "exit code 0" 0 (Runner.exit_code r);
  check Alcotest.int "both apps ran" 2 (List.length r.Runner.rn_results);
  List.iter
    (fun (a : Runner.app_result) ->
      check Alcotest.bool "fresh result" false a.Runner.ar_cached;
      check Alcotest.bool "has a report" true (a.Runner.ar_report_json <> None))
    r.Runner.rn_results

let test_runner_quarantine_exit_code () =
  let es = entries () in
  let victim = (List.hd es).Corpus.c_app.Spec.a_name in
  let o = { (quiet_options ()) with Runner.ro_force_crash = Some victim } in
  let r = run_ok o es in
  check Alcotest.int "exit code 2" 2 (Runner.exit_code r);
  check Alcotest.(list string) "victim quarantined" [ victim ]
    r.Runner.rn_quarantined;
  match r.Runner.rn_results with
  | q :: rest ->
      check Alcotest.bool "crash recorded" true (q.Runner.ar_crash <> None);
      check Alcotest.int "one crash retry" 2 q.Runner.ar_attempts;
      List.iter
        (fun (a : Runner.app_result) ->
          check Alcotest.bool "others unaffected" true
            (a.Runner.ar_status <> Runner.Quarantined))
        rest
  | [] -> Alcotest.fail "no results"

let test_runner_degraded_exit_code () =
  let o = quiet_options () in
  let o =
    {
      o with
      Runner.ro_pipeline =
        {
          o.Runner.ro_pipeline with
          Runner.Pipeline.op_limits =
            { Budget.bl_max_steps = 200; bl_max_depth = 24; bl_deadline_s = None };
        };
      ro_policy = Retry.no_retry;
    }
  in
  let r = run_ok o (entries ()) in
  check Alcotest.int "exit code 3" 3 (Runner.exit_code r)

let test_runner_warm_cache () =
  let dir = tmp_dir () in
  let o = { (quiet_options ()) with Runner.ro_cache_dir = Some dir } in
  let cold = run_ok o (entries ()) in
  let warm = run_ok o (entries ()) in
  List.iter2
    (fun (c : Runner.app_result) (w : Runner.app_result) ->
      check Alcotest.bool "cold run analyzed" false c.Runner.ar_cached;
      check Alcotest.bool "warm run cached" true w.Runner.ar_cached;
      check Alcotest.int "no attempts on a hit" 0 w.Runner.ar_attempts;
      check
        Alcotest.(option string)
        "identical report bytes" c.Runner.ar_report_json
        w.Runner.ar_report_json)
    cold.Runner.rn_results warm.Runner.rn_results

let test_runner_resume_byte_identical () =
  let dir = tmp_dir () in
  let journal = Filename.concat dir "journal.jsonl" in
  let o =
    {
      (quiet_options ()) with
      Runner.ro_journal = Some journal;
      ro_cache_dir = Some (Filename.concat dir "cache");
    }
  in
  (* Kill the run inside the second app's interpretation phase. *)
  Barrier.set_kill_point ~phase:"pipeline.interpretation" ~occurrence:2
    (fun () -> raise (Barrier.Killed 99));
  (match Runner.run o (entries ()) with
  | exception Barrier.Killed 99 -> ()
  | _ ->
      Barrier.clear_kill_point ();
      Alcotest.fail "kill-point did not fire");
  Barrier.clear_kill_point ();
  let resumed = run_ok { o with Runner.ro_resume = true } (entries ()) in
  (match resumed.Runner.rn_results with
  | first :: second :: _ ->
      check Alcotest.bool "first app restored from the journal" true
        first.Runner.ar_resumed;
      check Alcotest.bool "second app re-ran" false second.Runner.ar_resumed
  | _ -> Alcotest.fail "missing results");
  (* An untouched run over fresh state must serialize identically. *)
  let dir2 = tmp_dir () in
  let o2 =
    {
      (quiet_options ()) with
      Runner.ro_journal = Some (Filename.concat dir2 "journal.jsonl");
      ro_cache_dir = Some (Filename.concat dir2 "cache");
    }
  in
  let cold = run_ok o2 (entries ()) in
  let config = Runner.config_fingerprint o in
  check Alcotest.string "byte-identical report envelope"
    (Runner.report_json ~config cold)
    (Runner.report_json ~config resumed)

let test_runner_resume_refuses_config_mismatch () =
  let dir = tmp_dir () in
  let journal = Filename.concat dir "journal.jsonl" in
  let o = { (quiet_options ()) with Runner.ro_journal = Some journal } in
  let _ = run_ok o (entries ()) in
  let changed =
    {
      o with
      Runner.ro_resume = true;
      ro_policy = { Retry.default_policy with Retry.rp_max_attempts = 7 };
    }
  in
  (match Runner.run changed (entries ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resume under a different retry policy must refuse");
  match Runner.run { o with Runner.ro_resume = true; ro_journal = None } [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resume without a journal must refuse"

let test_runner_interrupt_partial () =
  let o = quiet_options () in
  (* A SIGINT mid-corpus surfaces as Barrier.Interrupted; the runner must
     return the completed prefix, flagged, with the documented exit. *)
  Barrier.set_kill_point ~phase:"pipeline.interpretation" ~occurrence:2
    (fun () -> raise Barrier.Interrupted);
  let r = run_ok o (entries ()) in
  Barrier.clear_kill_point ();
  check Alcotest.bool "interrupted flag" true r.Runner.rn_interrupted;
  check Alcotest.int "only the first app completed" 1
    (List.length r.Runner.rn_results);
  check Alcotest.int "exit code 130" 130 (Runner.exit_code r)

let test_runner_materialization_crash_quarantined () =
  (* APK materialization (Lazy.force + cache keying) runs inside the
     fault barrier: a malformed spec must quarantine that app with a
     "codegen"-phase crash, not escape the corpus loop. *)
  let es = entries () in
  let bad =
    {
      Corpus.c_app = (List.nth es 1).Corpus.c_app;
      c_apk = lazy (failwith "malformed spec");
      c_row = None;
    }
  in
  let r = run_ok (quiet_options ()) [ List.hd es; bad ] in
  check Alcotest.int "exit code 2" 2 (Runner.exit_code r);
  match r.Runner.rn_results with
  | [ good; q ] -> (
      check Alcotest.bool "healthy app unaffected" true
        (good.Runner.ar_status <> Runner.Quarantined);
      check Alcotest.bool "bad app quarantined" true
        (q.Runner.ar_status = Runner.Quarantined);
      match q.Runner.ar_crash with
      | Some c ->
          check Alcotest.string "crash phase" "codegen" c.Barrier.cr_phase;
          check Alcotest.bool "crash carries the exception" true
            (c.Barrier.cr_exn <> "")
      | None -> Alcotest.fail "quarantined app has no crash record")
  | _ -> Alcotest.fail "expected two results"

let test_runner_warm_cache_recovers_degradations () =
  (* Cache hits splice the report bytes back verbatim; the summary's
     degradation column must come back too (parsed from the report
     JSON), not reset to empty. *)
  let o = quiet_options () in
  let o =
    {
      o with
      Runner.ro_cache_dir = Some (tmp_dir ());
      ro_pipeline =
        {
          o.Runner.ro_pipeline with
          Runner.Pipeline.op_limits =
            { Budget.bl_max_steps = 200; bl_max_depth = 24; bl_deadline_s = None };
        };
      ro_policy = Retry.no_retry;
    }
  in
  let cold = run_ok o (entries ()) in
  let warm = run_ok o (entries ()) in
  check Alcotest.bool "workload actually degrades" true
    (List.exists
       (fun (a : Runner.app_result) -> a.Runner.ar_degradations <> [])
       cold.Runner.rn_results);
  List.iter2
    (fun (c : Runner.app_result) (w : Runner.app_result) ->
      check Alcotest.bool "warm run cached" true w.Runner.ar_cached;
      check Alcotest.bool "degradations recovered from the report" true
        (c.Runner.ar_degradations = w.Runner.ar_degradations))
    cold.Runner.rn_results warm.Runner.rn_results

(* ------------------------------------------------------------------ *)
(* Worker pool                                                        *)
(* ------------------------------------------------------------------ *)

(* Enough apps that 2 workers see more than one task each. *)
let pool_entries () =
  match Corpus.table1 () with
  | a :: b :: c :: d :: _ -> [ a; b; c; d ]
  | _ -> Alcotest.fail "corpus too small"

let report o r = Runner.report_json ~config:(Runner.config_fingerprint o) r

let test_pool_byte_identical () =
  let es = pool_entries () in
  let o = quiet_options () in
  let seq = run_ok o es in
  let par = run_ok { o with Runner.ro_jobs = 4 } es in
  check Alcotest.int "same exit code" (Runner.exit_code seq)
    (Runner.exit_code par);
  check Alcotest.string "byte-identical report envelope" (report o seq)
    (report o par)

let test_pool_worker_death_quarantines () =
  let es = pool_entries () in
  let victim = (List.nth es 2).Corpus.c_app.Spec.a_name in
  let o =
    { (quiet_options ()) with Runner.ro_jobs = 2; ro_worker_kill = Some victim }
  in
  let r = run_ok o es in
  check Alcotest.int "exit code 2" 2 (Runner.exit_code r);
  check Alcotest.(list string) "only the in-flight app quarantined" [ victim ]
    r.Runner.rn_quarantined;
  List.iter
    (fun (a : Runner.app_result) ->
      if a.Runner.ar_app = victim then (
        check Alcotest.bool "victim quarantined" true
          (a.Runner.ar_status = Runner.Quarantined);
        match a.Runner.ar_crash with
        | Some c -> check Alcotest.string "crash phase" "worker" c.Barrier.cr_phase
        | None -> Alcotest.fail "victim has no crash record")
      else
        check Alcotest.bool "other apps survive the worker death" true
          (a.Runner.ar_status <> Runner.Quarantined))
    r.Runner.rn_results

let test_pool_kill_resume_byte_identical () =
  let es = pool_entries () in
  let dir = tmp_dir () in
  let o =
    {
      (quiet_options ()) with
      Runner.ro_jobs = 2;
      ro_journal = Some (Filename.concat dir "journal.jsonl");
      ro_cache_dir = Some (Filename.concat dir "cache");
    }
  in
  (* 4 tasks over 2 workers: some worker runs a second app and trips the
     per-process kill-point (inherited through fork), exits 99, and the
     coordinator re-raises Killed 99 after tearing the pool down. *)
  Barrier.set_kill_point ~phase:"pipeline.interpretation" ~occurrence:2
    (fun () -> raise (Barrier.Killed 99));
  (match Runner.run o es with
  | exception Barrier.Killed 99 -> ()
  | _ ->
      Barrier.clear_kill_point ();
      Alcotest.fail "kill-point did not fire under the pool");
  Barrier.clear_kill_point ();
  let resumed = run_ok { o with Runner.ro_resume = true } es in
  check Alcotest.bool "journal restored at least one app" true
    (List.exists
       (fun (a : Runner.app_result) -> a.Runner.ar_resumed)
       resumed.Runner.rn_results);
  (* The parallel resumed run must serialize exactly like an untouched
     sequential run over fresh state. *)
  let dir2 = tmp_dir () in
  let o2 =
    {
      (quiet_options ()) with
      Runner.ro_journal = Some (Filename.concat dir2 "journal.jsonl");
      ro_cache_dir = Some (Filename.concat dir2 "cache");
    }
  in
  let cold = run_ok o2 es in
  check Alcotest.string "byte-identical report envelope" (report o2 cold)
    (report o resumed)

let () =
  Alcotest.run "durability"
    [
      ( "retry",
        [
          tc "escalation widens and saturates" test_escalate;
          tc "degraded rung escalates then succeeds"
            test_ladder_escalates_then_succeeds;
          tc "exhausted ladder stays degraded"
            test_ladder_exhausts_still_degraded;
          tc "crash retried once then quarantined"
            test_crash_retried_once_then_quarantined;
          tc "no_retry runs exactly once" test_no_retry_policy;
        ] );
      ( "journal",
        [
          tc "events round-trip" test_journal_round_trip;
          tc "config mismatch refused" test_journal_config_mismatch_refused;
          tc "torn trailing lines skipped"
            test_journal_skips_torn_trailing_line;
          tc "append lands after a torn tail" test_journal_append_after_load;
          tc "mid-file bit flip reported and dropped"
            test_journal_midfile_bitflip_reported;
          tc "duplicated line tolerated" test_journal_duplicated_line_tolerated;
          tc "interleaved partial record reported"
            test_journal_interleaved_partial_record;
          tc "legacy unsealed journal accepted"
            test_journal_legacy_unsealed_accepted;
          tc "finished excludes restarted apps"
            test_journal_finished_excludes_restarted;
        ] );
      ( "store",
        [
          tc "key sensitivity" test_key_sensitivity;
          tc "key validation" test_key_of_string;
          tc "integrity seal round-trips" test_store_seal_round_trip;
          tc "corrupt entry degrades to a miss and heals"
            test_store_corrupt_entry_heals;
          tc "audit names rotted entries" test_store_audit;
          tc "startup sweep removes orphaned temps" test_sweep_orphaned_temps;
          tc "round trip and hit/miss metrics"
            test_store_round_trip_and_metrics;
        ] );
      ( "runner",
        [
          tc "clean corpus exits 0" test_runner_clean_run;
          tc "repeat crash quarantines and exits 2"
            test_runner_quarantine_exit_code;
          tc "degradation exits 3" test_runner_degraded_exit_code;
          tc "warm cache restores identical bytes" test_runner_warm_cache;
          tc "kill + resume is byte-identical" test_runner_resume_byte_identical;
          tc "resume refuses a changed configuration"
            test_runner_resume_refuses_config_mismatch;
          tc "interrupt returns partial results" test_runner_interrupt_partial;
          tc "materialization crash quarantined behind the barrier"
            test_runner_materialization_crash_quarantined;
          tc "warm cache recovers degradations"
            test_runner_warm_cache_recovers_degradations;
        ] );
      ( "pool",
        [
          tc "parallel report byte-identical to sequential"
            test_pool_byte_identical;
          tc "worker death quarantines only the in-flight app"
            test_pool_worker_death_quarantines;
          tc "parallel kill + resume is byte-identical"
            test_pool_kill_resume_byte_identical;
        ] );
    ]
