(* Provenance-recorder tests: the disabled fast path, per-phase record /
   query round-trips, alias mapping across transaction dedup, and the
   end-to-end evidence chains gathered for SharedDP (every transaction
   must carry a non-empty chain whose statement ids resolve to real
   Limple statements). *)

module Ir = Extr_ir.Types
module Prog = Extr_ir.Prog
module Json = Extr_httpmodel.Json
module Provenance = Extr_provenance.Provenance
module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report
module Explain = Extr_extractocol.Explain
module Corpus = Extr_corpus.Corpus

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let sid ?(cls = "com.x.C") ?(meth = "m") idx =
  { Ir.sid_meth = { Ir.id_cls = cls; id_name = meth }; sid_idx = idx }

(* ------------------------------------------------------------------ *)
(* Recorder unit behavior                                             *)
(* ------------------------------------------------------------------ *)

let test_disabled_records_nothing () =
  let t = Provenance.create () in
  Provenance.record_slice_step t ~dp:(sid 0) ~stmt:(sid 1)
    Provenance.Backward_taint;
  Provenance.record_fact_edge t ~dir:`Backward ~stmt:(sid 1) "f";
  Provenance.record_rule t ~stmt:(sid 1) "r";
  Provenance.record_fragment t ~tx:0 ~part:"uri" ~rule:"r" ~stmt:(sid 1);
  Provenance.record_pair t ~dp:(sid 0)
    ~head:{ Ir.id_cls = "c"; id_name = "m" }
    ~reason:"x";
  Provenance.record_dep t ~tx:1 ~from_tx:0 ~to_field:"uri" ~reason:"x";
  check Alcotest.int "no slice steps" 0
    (List.length (Provenance.slice_steps t ~dp:(sid 0)));
  check Alcotest.int "no facts" 0
    (List.length (Provenance.fact_edges_at t (sid 1)));
  check Alcotest.int "no rules" 0 (List.length (Provenance.rules t));
  check Alcotest.int "no fragments" 0
    (List.length (Provenance.fragments_of t 0));
  check Alcotest.int "no pairs" 0
    (List.length (Provenance.pairs_of t ~dp:(sid 0)));
  check Alcotest.int "no deps" 0 (List.length (Provenance.deps_of t 1))

let test_slice_steps_chronological () =
  let t = Provenance.create ~enabled:true () in
  let dp = sid 5 in
  Provenance.record_slice_step t ~dp ~stmt:dp Provenance.Dp_discovered;
  Provenance.record_slice_step t ~dp ~stmt:(sid 1) Provenance.Backward_taint;
  Provenance.record_slice_step t ~dp ~stmt:(sid 9) Provenance.Forward_taint;
  (* A different DP's steps stay separate. *)
  Provenance.record_slice_step t ~dp:(sid 99) ~stmt:(sid 2)
    Provenance.Augmented;
  let steps = Provenance.slice_steps t ~dp in
  check Alcotest.int "three steps for this dp" 3 (List.length steps);
  check Alcotest.(list string) "chronological order"
    [ "demarcation-point"; "backward-taint"; "forward-taint" ]
    (List.map (fun (_, s) -> Provenance.slice_step_name s) steps)

let test_fact_and_rule_queries () =
  let t = Provenance.create ~enabled:true () in
  Provenance.record_fact_edge t ~dir:`Backward ~stmt:(sid 1) "b0";
  Provenance.record_fact_edge t ~dir:`Forward ~stmt:(sid 1) "f0";
  Provenance.record_fact_edge t ~dir:`Backward ~stmt:(sid 2) "b1";
  Provenance.record_rule t ~stmt:(sid 1) "Cls.meth";
  check Alcotest.(list string) "facts at stmt, in order" [ "b0"; "f0" ]
    (List.map
       (fun (e : Provenance.fact_edge) -> e.Provenance.fe_fact)
       (Provenance.fact_edges_at t (sid 1)));
  check Alcotest.int "rules at stmt" 1
    (List.length (Provenance.rules_at t (sid 1)));
  check Alcotest.int "no rules elsewhere" 0
    (List.length (Provenance.rules_at t (sid 2)))

let test_alias_mapping () =
  (* Evidence recorded against a merged duplicate (raw tx 3) must reach
     its post-dedup representative (tx 0) through the alias map. *)
  let t = Provenance.create ~enabled:true () in
  Provenance.record_fragment t ~tx:0 ~part:"uri" ~rule:"r0" ~stmt:(sid 1);
  Provenance.record_fragment t ~tx:3 ~part:"body" ~rule:"r1" ~stmt:(sid 2);
  Provenance.record_dep t ~tx:3 ~from_tx:0 ~to_field:"uri" ~reason:"heap";
  let aliases = [ (3, 0) ] in
  check Alcotest.int "fragments without aliases" 1
    (List.length (Provenance.fragments_of t 0));
  check Alcotest.(list string) "fragments through aliases" [ "uri"; "body" ]
    (List.map
       (fun (f : Provenance.fragment) -> f.Provenance.fg_part)
       (Provenance.fragments_of t ~aliases 0));
  check Alcotest.int "deps through aliases" 1
    (List.length (Provenance.deps_of t ~aliases 0))

let test_reset_keeps_flag () =
  let t = Provenance.create ~enabled:true () in
  Provenance.record_rule t ~stmt:(sid 1) "r";
  Provenance.reset t;
  check Alcotest.int "cleared" 0 (List.length (Provenance.rules t));
  check Alcotest.bool "still enabled" true (Provenance.is_enabled t);
  Provenance.record_rule t ~stmt:(sid 1) "r2";
  check Alcotest.int "records again" 1 (List.length (Provenance.rules t))

(* ------------------------------------------------------------------ *)
(* End-to-end evidence on SharedDP                                     *)
(* ------------------------------------------------------------------ *)

let shareddp_evidence : (Pipeline.analysis * Explain.tx_evidence list) Lazy.t =
  lazy
    (let e = Option.get (Corpus.find (Corpus.case_studies ()) "SharedDP") in
     let apk = Lazy.force e.Corpus.c_apk in
     Provenance.reset Provenance.default;
     Provenance.set_enabled Provenance.default true;
     let analysis = Pipeline.analyze apk in
     Provenance.set_enabled Provenance.default false;
     (analysis, Explain.gather analysis))

let test_every_tx_has_evidence () =
  let analysis, evs = Lazy.force shareddp_evidence in
  check Alcotest.int "one evidence record per transaction"
    (List.length analysis.Pipeline.an_report.Report.rp_transactions)
    (List.length evs);
  check Alcotest.bool "transactions present" true (evs <> []);
  List.iter
    (fun (ev : Explain.tx_evidence) ->
      check Alcotest.bool "non-empty slice chain" true (ev.Explain.ev_slice <> []);
      check Alcotest.bool "taint facts recorded" true (ev.Explain.ev_facts <> []);
      check Alcotest.bool "rules recorded" true (ev.Explain.ev_rules <> []);
      check Alcotest.bool "fragments recorded" true
        (ev.Explain.ev_fragments <> []);
      check Alcotest.bool "pairing justified" true (ev.Explain.ev_pairs <> []))
    evs

let test_statement_ids_resolve () =
  (* Every statement id in every chain must point at a real Limple
     statement of the analyzed program. *)
  let analysis, evs = Lazy.force shareddp_evidence in
  let prog = analysis.Pipeline.an_prog in
  let resolves what s =
    check Alcotest.bool
      (Fmt.str "%s statement %s resolves" what (Ir.Stmt_id.to_string s))
      true
      (Prog.stmt_at prog s <> None)
  in
  List.iter
    (fun (ev : Explain.tx_evidence) ->
      List.iter (fun (s, _) -> resolves "slice" s) ev.Explain.ev_slice;
      List.iter
        (fun (e : Provenance.fact_edge) -> resolves "fact" e.Provenance.fe_stmt)
        ev.Explain.ev_facts;
      List.iter
        (fun (r : Provenance.rule_app) -> resolves "rule" r.Provenance.ru_stmt)
        ev.Explain.ev_rules;
      List.iter
        (fun (f : Provenance.fragment) -> resolves "fragment" f.Provenance.fg_stmt)
        ev.Explain.ev_fragments)
    evs

let test_evidence_json_roundtrip () =
  let _, evs = Lazy.force shareddp_evidence in
  let text = Json.to_string (Explain.to_json evs) in
  match Json.of_string text with
  | Json.List txs ->
      check Alcotest.int "all transactions exported" (List.length evs)
        (List.length txs);
      List.iter
        (fun tx ->
          List.iter
            (fun key ->
              check Alcotest.bool (key ^ " member present") true
                (Json.member key tx <> None))
            [ "tx"; "dp"; "slice"; "facts"; "rules"; "fragments"; "pairing" ])
        txs
  | _ -> Alcotest.fail "provenance export is not a JSON list"

let test_pp_tree_renders () =
  let analysis, evs = Lazy.force shareddp_evidence in
  let out =
    Fmt.str "%a"
      (Fmt.list (Explain.pp_tree analysis.Pipeline.an_prog))
      evs
  in
  let contains needle =
    let n = String.length needle and h = String.length out in
    let rec go i = i + n <= h && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "demarcation point printed" true
    (contains "demarcation point");
  check Alcotest.bool "statement text resolved, not fallback" true
    (not (contains "<unresolved>"))

let test_disabled_pipeline_empty_chains () =
  (* With the default (disabled) recorder the same gather yields empty
     chains — the report itself is unaffected. *)
  let e = Option.get (Corpus.find (Corpus.case_studies ()) "SharedDP") in
  let apk = Lazy.force e.Corpus.c_apk in
  Provenance.reset Provenance.default;
  let analysis = Pipeline.analyze apk in
  let evs = Explain.gather analysis in
  check Alcotest.bool "transactions still reported" true (evs <> []);
  List.iter
    (fun (ev : Explain.tx_evidence) ->
      check Alcotest.int "no slice evidence" 0 (List.length ev.Explain.ev_slice);
      check Alcotest.int "no fragments" 0
        (List.length ev.Explain.ev_fragments))
    evs

let () =
  Alcotest.run "provenance"
    [
      ( "recorder",
        [
          tc "disabled records nothing" test_disabled_records_nothing;
          tc "slice steps chronological per dp" test_slice_steps_chronological;
          tc "fact and rule queries" test_fact_and_rule_queries;
          tc "alias mapping across dedup" test_alias_mapping;
          tc "reset keeps the enabled flag" test_reset_keeps_flag;
        ] );
      ( "shareddp",
        [
          tc "every transaction carries evidence" test_every_tx_has_evidence;
          tc "statement ids resolve" test_statement_ids_resolve;
          tc "json export round-trips" test_evidence_json_roundtrip;
          tc "evidence tree renders" test_pp_tree_renders;
          tc "disabled pipeline yields empty chains"
            test_disabled_pipeline_empty_chains;
        ] );
    ]
