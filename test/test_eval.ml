(* Evaluation-layer tests: signature concretization and replay
   (§5.3), byte accounting, coverage arithmetic, keyword extraction,
   validity checking, and the Table-5/6 text helpers. *)

module Http = Extr_httpmodel.Http
module Uri = Extr_httpmodel.Uri
module Json = Extr_httpmodel.Json
module Strsig = Extr_siglang.Strsig
module Msgsig = Extr_siglang.Msgsig
module Corpus = Extr_corpus.Corpus
module Spec = Extr_corpus.Spec
module Eval = Extr_eval.Eval
module Tables = Extr_eval.Tables
module Replay = Extr_eval.Replay

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let kayak_eval : Eval.app_eval Lazy.t =
  lazy
    (let entries = Corpus.case_studies () in
     Eval.evaluate (Option.get (Corpus.find entries "Kayak (case study)")))

let rr_eval : Eval.app_eval Lazy.t =
  lazy
    (let entries = Corpus.case_studies () in
     Eval.evaluate (Option.get (Corpus.find entries "radio reddit")))

(* ------------------------------------------------------------------ *)
(* Concretization                                                     *)
(* ------------------------------------------------------------------ *)

let test_concretize_literals () =
  check Alcotest.string "literal" "abc" (Replay.concretize (Strsig.Lit "abc"));
  check Alcotest.string "concat"
    "a7true"
    (Replay.concretize
       (Strsig.Concat
          [
            Strsig.Lit "a";
            Strsig.Unknown Strsig.Hnum;
            Strsig.Unknown Strsig.Hbool;
          ]))

let test_concretize_alt_rep () =
  check Alcotest.string "first branch of alternation" "x"
    (Replay.concretize (Strsig.Alt [ Strsig.Lit "x"; Strsig.Lit "y" ]));
  check Alcotest.string "rep collapses to zero copies" "ab"
    (Replay.concretize
       (Strsig.Concat [ Strsig.Lit "a"; Strsig.Rep (Strsig.Lit "z"); Strsig.Lit "b" ]))

let test_concretize_subst () =
  (* The value following "sid=" is replaced by key. *)
  let sg =
    Strsig.Concat
      [ Strsig.Lit "https://h/p?sid="; Strsig.Unknown Strsig.Hany ]
  in
  check Alcotest.string "query substitution"
    "https://h/p?sid=S123"
    (Replay.concretize ~subst:[ ("sid", "S123") ] sg);
  (* Unrelated keys keep the placeholder. *)
  check Alcotest.string "no substitution"
    "https://h/p?sid=x"
    (Replay.concretize ~subst:[ ("other", "S123") ] sg)

let test_request_of_sig () =
  let rs =
    {
      Msgsig.rs_meth = Http.POST;
      rs_uri = Strsig.Lit "https://h/api";
      rs_headers = [ ("User-Agent", Strsig.Lit "ua/1.0") ];
      rs_body = Msgsig.Bquery [ ("q", Strsig.Unknown Strsig.Hany) ];
    }
  in
  match Replay.request_of_sig ~subst:[ ("q", "milan") ] rs with
  | None -> Alcotest.fail "request not built"
  | Some req ->
      check Alcotest.string "uri" "https://h/api" (Uri.to_string req.Http.req_uri);
      check Alcotest.(list (pair string string)) "headers"
        [ ("User-Agent", "ua/1.0") ]
        req.Http.req_headers;
      (match req.Http.req_body with
      | Http.Query [ ("q", v) ] -> check Alcotest.string "body subst" "milan" v
      | _ -> Alcotest.fail "body shape")

let test_request_of_sig_bad_uri () =
  let rs =
    {
      Msgsig.rs_meth = Http.GET;
      rs_uri = Strsig.Lit "not a uri";
      rs_headers = [];
      rs_body = Msgsig.Bnone;
    }
  in
  check Alcotest.bool "unparseable URI rejected" true
    (Replay.request_of_sig rs = None)

(* ------------------------------------------------------------------ *)
(* Replay on the real Kayak report                                     *)
(* ------------------------------------------------------------------ *)

let test_find_tx () =
  let ae = Lazy.force kayak_eval in
  check Alcotest.bool "authajax transaction found" true
    (Replay.find_tx ae.Eval.ae_report "kauthajax" <> None);
  check Alcotest.bool "nonexistent fragment" true
    (Replay.find_tx ae.Eval.ae_report "zzznope" = None)

let test_flight_search_replay () =
  let ae = Lazy.force kayak_eval in
  check Alcotest.bool "fares retrieved" true
    (Replay.flight_search ae.Eval.ae_app ae.Eval.ae_report)

(* ------------------------------------------------------------------ *)
(* Byte accounting                                                    *)
(* ------------------------------------------------------------------ *)

let test_account_arithmetic () =
  let acc = Eval.add_account Eval.zero_account (10, 20, 70) in
  let acc = Eval.add_account acc (10, 0, 0) in
  let k, v, n = Eval.account_percentages acc in
  check (Alcotest.float 0.01) "k%" 18.18 k;
  check (Alcotest.float 0.01) "v%" 18.18 v;
  check (Alcotest.float 0.01) "n%" 63.63 n

let test_accounting_covers_all_bytes () =
  (* Rk + Rv + Rn must classify 100% of each trace's bytes. *)
  let ae = Lazy.force rr_eval in
  let req, resp = Eval.byte_accounting ae ae.Eval.ae_full in
  List.iter
    (fun (acc : Eval.byte_account) ->
      let k, v, n = Eval.account_percentages acc in
      if acc.Eval.ba_k + acc.Eval.ba_v + acc.Eval.ba_n > 0 then
        check (Alcotest.float 0.01) "percentages sum to 100" 100. (k +. v +. n))
    [ req; resp ]

(* ------------------------------------------------------------------ *)
(* Coverage arithmetic                                                *)
(* ------------------------------------------------------------------ *)

let test_coverage_radio_reddit () =
  let ae = Lazy.force rr_eval in
  let c = Eval.coverage ae in
  let g, p, u, d = c.Eval.cr_static in
  (* Table 1 row: radio reddit 3 GET + 3 POST. *)
  check Alcotest.(list int) "static row" [ 3; 3; 0; 0 ] [ g; p; u; d ];
  check Alcotest.bool "manual ≤ static per method" true
    (let mg, mp, _, _ = c.Eval.cr_manual in
     mg <= g && mp <= p)

let test_validity_full_trace () =
  (* Every supported request in the exhaustive trace matches a signature
     (the §5.1 validity experiment). *)
  let ae = Lazy.force rr_eval in
  let matched, total = Eval.signature_validity ae ae.Eval.ae_full in
  check Alcotest.bool "trace non-empty" true (total > 0);
  check Alcotest.int "all supported requests match" total matched

(* ------------------------------------------------------------------ *)
(* Miss diagnosis                                                     *)
(* ------------------------------------------------------------------ *)

module Metrics = Extr_telemetry.Metrics

let test_miss_diagnosis_shareddp () =
  (* SharedDP's two endpoints are both statically reconstructed, so the
     diagnosis finds nothing to attribute. *)
  let entries = Corpus.case_studies () in
  let mr = Eval.diagnose_misses (Option.get (Corpus.find entries "SharedDP")) in
  check Alcotest.int "all endpoints covered" mr.Eval.mr_total mr.Eval.mr_covered;
  check Alcotest.int "no misses" 0 (List.length mr.Eval.mr_misses)

let test_miss_diagnosis_unsupported () =
  (* The synthetic Table-1 apps carry deliberately-unsupported endpoints
     (intent-service dispatch, §4): each must be attributed to the
     interpreter, and covered + missed must account for every endpoint. *)
  let entry =
    Corpus.table1 ()
    |> List.filter (fun (e : Corpus.entry) ->
           List.exists
             (fun (ep : Spec.endpoint) -> not ep.Spec.e_supported)
             e.Corpus.c_app.Spec.a_endpoints)
    |> List.sort (fun (a : Corpus.entry) (b : Corpus.entry) ->
           compare
             (List.length a.Corpus.c_app.Spec.a_endpoints)
             (List.length b.Corpus.c_app.Spec.a_endpoints))
    |> List.hd
  in
  let app = entry.Corpus.c_app in
  Metrics.reset Metrics.default;
  Metrics.set_enabled Metrics.default true;
  let mr = Eval.diagnose_misses entry in
  Metrics.set_enabled Metrics.default false;
  check Alcotest.int "covered + missed = total" mr.Eval.mr_total
    (mr.Eval.mr_covered + List.length mr.Eval.mr_misses);
  List.iter
    (fun (ep : Spec.endpoint) ->
      if not ep.Spec.e_supported then
        match
          List.find_opt
            (fun (m : Eval.miss) -> m.Eval.ms_endpoint = ep.Spec.e_id)
            mr.Eval.mr_misses
        with
        | None ->
            Alcotest.failf "unsupported endpoint %s not reported missed"
              ep.Spec.e_id
        | Some m ->
            check Alcotest.string "unsupported endpoints bail in the interpreter"
              "interp-bailed"
              (Eval.miss_phase_name m.Eval.ms_phase))
    app.Spec.a_endpoints;
  (* Per-phase counts flow through the metrics registry. *)
  let exported =
    List.fold_left
      (fun acc (s : Metrics.sample) ->
        if s.Metrics.sa_name = "eval.missed_endpoints" then
          acc + s.Metrics.sa_count
        else acc)
      0
      (Metrics.snapshot Metrics.default)
  in
  check Alcotest.int "metrics counter matches the miss list"
    (List.length mr.Eval.mr_misses)
    exported;
  (* The rendering names every miss once. *)
  let out = Fmt.str "%a" Eval.pp_miss_report mr in
  List.iter
    (fun (m : Eval.miss) ->
      check Alcotest.bool "miss rendered" true
        (Tables.Str_replace.contains out m.Eval.ms_endpoint))
    mr.Eval.mr_misses

(* ------------------------------------------------------------------ *)
(* JSON export                                                        *)
(* ------------------------------------------------------------------ *)

let test_report_json_roundtrip () =
  let ae = Lazy.force rr_eval in
  let js = Extr_extractocol.Report.to_json ae.Eval.ae_report in
  let text = Json.to_string js in
  (* The export must parse back with our own JSON parser. *)
  let parsed = Json.of_string text in
  check Alcotest.bool "app name present" true
    (Json.member "app" parsed = Some (Json.Str "radio reddit"));
  (match Json.member "transactions" parsed with
  | Some (Json.List txs) ->
      check Alcotest.int "all transactions exported"
        (List.length ae.Eval.ae_report.Extr_extractocol.Report.rp_transactions)
        (List.length txs);
      List.iter
        (fun tx ->
          check Alcotest.bool "request member" true
            (Json.member "request" tx <> None);
          check Alcotest.bool "response member" true
            (Json.member "response" tx <> None))
        txs
  | _ -> Alcotest.fail "transactions missing");
  (* Dependencies survive: login feeds save in radio reddit. *)
  check Alcotest.bool "a dependency is exported" true
    (Tables.Str_replace.contains text "from_tx")

let test_report_dot_export () =
  let ae = Lazy.force rr_eval in
  let report = ae.Eval.ae_report in
  let dot = Extr_extractocol.Report.to_dot report in
  let count_sub needle =
    let n = String.length needle and h = String.length dot in
    let rec go i acc =
      if i + n > h then acc
      else go (i + 1) (acc + if String.sub dot i n = needle then 1 else 0)
    in
    go 0 0
  in
  let txs = List.length report.Extr_extractocol.Report.rp_transactions in
  let deps =
    List.fold_left
      (fun acc tr ->
        acc + List.length tr.Extr_extractocol.Report.tr_deps)
      0 report.Extr_extractocol.Report.rp_transactions
  in
  check Alcotest.int "one node per transaction" txs (count_sub "[label=\"#");
  (* label text also contains arrows; edge lines are "tX -> tY" *)
  check Alcotest.int "one edge per dependency" deps (count_sub " -> t");
  check Alcotest.bool "closed graph" true
    (String.length dot > 2 && String.sub dot (String.length dot - 2) 2 = "}\n")

(* ------------------------------------------------------------------ *)
(* Table helpers                                                      *)
(* ------------------------------------------------------------------ *)

let test_str_replace_contains () =
  check Alcotest.bool "flattens escapes" true
    (Tables.Str_replace.contains "https://h\\/k\\/authajax" "khauthajax" = false);
  check Alcotest.bool "match after stripping" true
    (Tables.Str_replace.contains "\\/k\\/authajax" "kauthajax");
  check Alcotest.bool "empty needle" true (Tables.Str_replace.contains "x" "");
  check Alcotest.bool "no match" false (Tables.Str_replace.contains "abc" "zzz")

let test_render_table5_smoke () =
  let ae = Lazy.force kayak_eval in
  let out = Fmt.str "%a" Tables.render_table5 ae.Eval.ae_report in
  check Alcotest.bool "categories printed" true
    (Tables.Str_replace.contains out "Authentication");
  check Alcotest.bool "user agent identified" true
    (Tables.Str_replace.contains out "kayakandroidphone8.1 = true")

let test_render_table6_smoke () =
  let ae = Lazy.force kayak_eval in
  let out = Fmt.str "%a" Tables.render_table6 ae.Eval.ae_report in
  check Alcotest.bool "flight start present" true
    (Tables.Str_replace.contains out "flightstart");
  check Alcotest.bool "flight poll present" true
    (Tables.Str_replace.contains out "flightpoll")

let () =
  Alcotest.run "eval"
    [
      ( "concretize",
        [
          tc "literals and hints" test_concretize_literals;
          tc "alternation and repetition" test_concretize_alt_rep;
          tc "query substitution" test_concretize_subst;
          tc "request building" test_request_of_sig;
          tc "bad uri" test_request_of_sig_bad_uri;
        ] );
      ( "replay",
        [
          tc "find transaction by fragment" test_find_tx;
          tc "flight search end-to-end" test_flight_search_replay;
        ] );
      ( "accounting",
        [
          tc "percentage arithmetic" test_account_arithmetic;
          tc "all bytes classified" test_accounting_covers_all_bytes;
        ] );
      ( "coverage",
        [
          tc "radio reddit row" test_coverage_radio_reddit;
          tc "validity on full trace" test_validity_full_trace;
        ] );
      ( "miss-diagnosis",
        [
          tc "SharedDP fully covered" test_miss_diagnosis_shareddp;
          tc "unsupported endpoints attributed" test_miss_diagnosis_unsupported;
        ] );
      ("json", [ tc "report export round-trips" test_report_json_roundtrip ]);
      ("dot", [ tc "dependency graph export" test_report_dot_export ]);
      ( "tables",
        [
          tc "substring helper" test_str_replace_contains;
          tc "table 5 renders" test_render_table5_smoke;
          tc "table 6 renders" test_render_table6_smoke;
        ] );
    ]
