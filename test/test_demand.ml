(* Demand-driven call graph vs the eager whole-program construction:
   ROADMAP item 1 requires the two modes to be observationally identical
   — same call-site records, same caller lists (contents AND order, since
   caller order feeds the taint worklists), same reachability sets, and
   byte-identical report envelopes end to end.  Also the regression test
   for the work-stack [reachable_from]: deep synthetic call chains used
   to blow the OCaml stack. *)

module Ir = Extr_ir.Types
module B = Extr_ir.Builder
module Prog = Extr_ir.Prog
module Callgraph = Extr_cfg.Callgraph
module Api = Extr_semantics.Api
module Callbacks = Extr_semantics.Callbacks
module Apk = Extr_apk.Apk
module Corpus = Extr_corpus.Corpus
module Pipeline = Extr_extractocol.Pipeline
module Report = Extr_extractocol.Report

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let show_mid (m : Ir.method_id) = m.Ir.id_cls ^ "." ^ m.Ir.id_name

let show_sid (s : Ir.stmt_id) =
  Printf.sprintf "%s:%d" (show_mid s.Ir.sid_meth) s.Ir.sid_idx

let show_callsite (cs : Callgraph.callsite) =
  Printf.sprintf "%s%s -> [%s]" (show_sid cs.Callgraph.cs_stmt)
    (if cs.Callgraph.cs_implicit then " (implicit)" else "")
    (String.concat "; " (List.map show_mid cs.Callgraph.cs_callees))

let graphs_of prog =
  let eager = Callgraph.build ~callback_resolver:Callbacks.resolve prog in
  let demand =
    Callgraph.lazy_build ~callback_resolver:Callbacks.resolve
      ~callback_triggers:Callbacks.trigger_names prog
  in
  (eager, demand)

(* Every observable of the graph agrees between the modes, for every
   application method of [apk] — including list order. *)
let check_graph_equivalence name (apk : Apk.t) =
  let prog =
    Prog.of_program (Pipeline.with_library_classes apk.Apk.program)
  in
  let eager, demand = graphs_of prog in
  let mids =
    List.map Ir.method_id_of_meth (Prog.app_methods prog)
    |> List.sort Ir.Method_id.compare
  in
  List.iter
    (fun mid ->
      let ctx what = Printf.sprintf "%s: %s of %s" name what (show_mid mid) in
      check
        Alcotest.(list string)
        (ctx "callsites")
        (List.map show_callsite (Callgraph.callsites eager mid))
        (List.map show_callsite (Callgraph.callsites demand mid));
      check
        Alcotest.(list string)
        (ctx "callers")
        (List.map show_sid (Callgraph.callers eager mid))
        (List.map show_sid (Callgraph.callers demand mid)))
    mids;
  let entries = List.map Ir.method_id_of_ref (Apk.entry_points apk) in
  let reach cg =
    Callgraph.reachable_from cg entries
    |> Ir.Method_set.elements |> List.map show_mid
  in
  check
    Alcotest.(list string)
    (name ^ ": reachable_from entry points")
    (reach eager) (reach demand)

(* (a) 50 generated apps — the --gen stress corpus exercises deep call
   chains, shared helpers, listeners and unreachable filler methods. *)
let test_generated_equivalence () =
  List.iter
    (fun (e : Corpus.entry) ->
      check_graph_equivalence e.Corpus.c_app.Extr_corpus.Spec.a_name
        (Lazy.force e.Corpus.c_apk))
    (Corpus.generated ~seed:42 ~count:50)

(* (b) The hand-authored case studies carry the implicit-edge patterns
   (AsyncTask, Volley listeners, Timer, SQLite) the generator does not. *)
let test_case_study_equivalence () =
  List.iter
    (fun (e : Corpus.entry) ->
      check_graph_equivalence e.Corpus.c_app.Extr_corpus.Spec.a_name
        (Lazy.force e.Corpus.c_apk))
    (Corpus.case_studies ())

(* (c) Full-pipeline envelope byte-identity: the report rendered from a
   demand-driven analysis must equal the eager one character for
   character, per case study, under that app's own configuration. *)
let test_envelope_identity () =
  List.iter
    (fun (e : Corpus.entry) ->
      let app = e.Corpus.c_app in
      let base =
        if app.Extr_corpus.Spec.a_closed then Pipeline.default_options
        else Pipeline.open_source_options
      in
      let apk = Lazy.force e.Corpus.c_apk in
      let render eager_cg =
        let options = { base with Pipeline.op_eager_callgraph = eager_cg } in
        let report = (Pipeline.analyze ~options apk).Pipeline.an_report in
        (* Wall time is the one legitimately nondeterministic field. *)
        Format.asprintf "%a" Report.pp { report with Report.rp_elapsed_s = 0.0 }
      in
      check Alcotest.string
        (app.Extr_corpus.Spec.a_name ^ ": envelope identical across modes")
        (render true) (render false))
    (Corpus.case_studies ())

(* (d) Work-stack regression: a 100k-deep synthetic call chain must not
   blow the stack in [reachable_from] (it did, as a spurious [crashed]
   quarantine, before the explicit work stack). *)
let test_deep_chain_reachability () =
  let depth = 100_000 in
  let meth i =
    B.mk_meth ~cls:"Chain"
      ~name:(Printf.sprintf "m%d" i)
      ~params:[] ~ret:Ir.Void
      (fun b ->
        if i + 1 < depth then
          B.call b (B.static_call "Chain" (Printf.sprintf "m%d" (i + 1)) []))
  in
  let prog =
    Prog.of_program
      {
        Ir.p_classes =
          [ B.mk_cls ~super:Api.java_object "Chain" (List.init depth meth) ];
        p_entries = [];
      }
  in
  let _, demand = graphs_of prog in
  let reach =
    Callgraph.reachable_from demand [ { Ir.id_cls = "Chain"; id_name = "m0" } ]
  in
  check Alcotest.int "whole chain reachable" depth (Ir.Method_set.cardinal reach)

(* (e) Laziness is real: after a full pipeline run in demand mode, some
   app methods must never have been resolved (generated apps always
   carry unreachable filler helpers), while the eager run resolves all. *)
let test_demand_skips_methods () =
  let skipped_total = ref 0 in
  List.iter
    (fun (e : Corpus.entry) ->
      let apk = Lazy.force e.Corpus.c_apk in
      let total an = List.length (Prog.app_methods an.Pipeline.an_prog) in
      let run eager_cg =
        let options =
          { Pipeline.default_options with Pipeline.op_eager_callgraph = eager_cg }
        in
        Pipeline.analyze ~options apk
      in
      let eager = run true in
      check Alcotest.int "eager resolves every method" (total eager)
        (Callgraph.resolved_count eager.Pipeline.an_cg);
      let demand = run false in
      let resolved = Callgraph.resolved_count demand.Pipeline.an_cg in
      check Alcotest.bool "demand never resolves more than exist" true
        (resolved <= total demand);
      skipped_total := !skipped_total + (total demand - resolved))
    (Corpus.generated ~seed:42 ~count:20);
  (* Not every generated app carries unreachable helpers, but a 20-app
     batch always does somewhere — zero would mean demand mode silently
     resolves the whole program. *)
  check Alcotest.bool "some method skipped across the batch" true
    (!skipped_total > 0)

let () =
  Alcotest.run "demand"
    [
      ( "equivalence",
        [
          tc "generated corpus (50 apps)" test_generated_equivalence;
          tc "case studies" test_case_study_equivalence;
          tc "report envelopes byte-identical" test_envelope_identity;
        ] );
      ( "laziness",
        [
          tc "deep chain reachability (100k)" test_deep_chain_reachability;
          tc "unreachable methods stay unresolved" test_demand_skips_methods;
        ] );
    ]
