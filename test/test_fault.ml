(* The fault-injection plan and the pool's hung-worker watchdog.  The
   plan tests are pure; the watchdog tests fork real workers through
   Pool.run with a wedged task and assert detection, requeue-once, and
   the Hung quarantine — all on sub-second timeouts so the suite stays
   fast. *)

module Fault = Extr_resilience.Fault
module Pool = Extr_eval.Pool

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Fault plan                                                          *)
(* ------------------------------------------------------------------ *)

let test_parse () =
  check
    (Alcotest.result
       (Alcotest.triple Alcotest.string Alcotest.int Alcotest.string)
       Alcotest.string)
    "bare site" (Ok ("export.write", 1, ""))
    (Fault.parse "export.write");
  check
    (Alcotest.result
       (Alcotest.triple Alcotest.string Alcotest.int Alcotest.string)
       Alcotest.string)
    "site, occurrence and mode"
    (Ok ("journal.append", 3, "torn"))
    (Fault.parse "journal.append@3:torn");
  check
    (Alcotest.result
       (Alcotest.triple Alcotest.string Alcotest.int Alcotest.string)
       Alcotest.string)
    "mode may contain spaces and colons keep splitting at the first"
    (Ok ("worker.spin", 1, "radio reddit"))
    (Fault.parse "worker.spin:radio reddit");
  (match Fault.parse "@2:torn" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty site must not parse");
  match Fault.parse "journal.append@zero" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric occurrence must not parse"

let test_fire_occurrence_and_one_shot () =
  Fault.reset ();
  Fault.arm ~site:"journal.append" ~occurrence:3 ~mode:"torn" ();
  check Alcotest.(option string) "hit 1" None (Fault.fire "journal.append");
  check Alcotest.(option string) "hit 2" None (Fault.fire "journal.append");
  check
    Alcotest.(option string)
    "hit 3 fires" (Some "torn") (Fault.fire "journal.append");
  check
    Alcotest.(option string)
    "fired entries disarm" None (Fault.fire "journal.append");
  check Alcotest.(option string) "other sites never match" None
    (Fault.fire "store.read");
  Fault.reset ()

let test_fire_arg_filter () =
  Fault.reset ();
  Fault.arm ~site:"worker.spin" ~mode:"target app" ();
  check Alcotest.(option string) "other apps pass" None
    (Fault.fire ~arg:"bystander" "worker.spin");
  check
    Alcotest.(option string)
    "the targeted app trips" (Some "target app")
    (Fault.fire ~arg:"target app" "worker.spin");
  Fault.reset ()

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)
(* ------------------------------------------------------------------ *)

(* One wedged task among quick ones.  Task 0 spins without heartbeats;
   the watchdog must kill its worker, requeue it once, watch the
   replacement hang too, and resolve it as Hung — while tasks 1..3
   complete normally. *)
let test_watchdog_requeues_then_quarantines () =
  let results = Hashtbl.create 8 in
  let hangs = ref [] in
  let outcome =
    Pool.run ~jobs:2 ~tasks:[ 0; 1; 2; 3 ] ~hang_timeout:0.3
      ~on_hang:(fun ~task ~phase -> hangs := (task, phase) :: !hangs)
      ~worker:(fun ~emit:_ ~beat i ->
        if i = 0 then begin
          beat ~phase:"spin";
          while true do
            Unix.sleepf 0.01
          done
        end;
        i * 10)
      ~farewell:(fun () -> ())
      ~on_event:(fun (_ : unit) -> ())
      ~on_bye:(fun () -> ())
      ~on_death:(fun ~task ~cause ->
        match cause with
        | Pool.Hung { hd_phase; _ } ->
            Hashtbl.replace results task (-1);
            check Alcotest.string "phase from the last heartbeat" "spin"
              hd_phase;
            -1
        | Pool.Died reason -> Alcotest.failf "unexpected death: %s" reason)
      ~on_result:(fun i r -> Hashtbl.replace results i r)
      ()
  in
  check Alcotest.bool "run completes" true (outcome = Pool.Completed);
  check
    Alcotest.(list (pair int string))
    "the wedged task was requeued exactly once"
    [ (0, "spin") ]
    !hangs;
  check Alcotest.int "wedged task resolved as hung" (-1)
    (Hashtbl.find results 0);
  List.iter
    (fun i ->
      check Alcotest.int
        (Printf.sprintf "task %d completed" i)
        (i * 10) (Hashtbl.find results i))
    [ 1; 2; 3 ]

(* A worker that answers its tasks but wedges during farewell must not
   hang the clean-shutdown drain: the bounded Up_bye collection kills it
   after the timeout and the run still completes. *)
let test_farewell_wedge_bounded () =
  let results = ref [] in
  let byes = ref 0 in
  let outcome =
    Pool.run ~jobs:1 ~tasks:[ 0; 1 ] ~hang_timeout:0.3
      ~worker:(fun ~emit:_ ~beat:_ i -> i)
      ~farewell:(fun () ->
        while true do
          Unix.sleepf 0.01
        done)
      ~on_event:(fun (_ : unit) -> ())
      ~on_bye:(fun () -> incr byes)
      ~on_death:(fun ~task:_ ~cause:_ -> -1)
      ~on_result:(fun i r -> results := (i, r) :: !results)
      ()
  in
  check Alcotest.bool "run completes despite the wedged farewell" true
    (outcome = Pool.Completed);
  check
    Alcotest.(list (pair int int))
    "every task still resolved"
    [ (0, 0); (1, 1) ]
    (List.sort compare !results);
  check Alcotest.int "no farewell from the wedged worker" 0 !byes

(* Heartbeats keep a slow-but-alive worker off the watchdog's kill
   list: a task longer than the timeout survives as long as it beats. *)
let test_heartbeat_defers_the_watchdog () =
  let outcome =
    Pool.run ~jobs:1 ~tasks:[ 0 ] ~hang_timeout:0.2
      ~worker:(fun ~emit:_ ~beat i ->
        for _ = 1 to 8 do
          Unix.sleepf 0.1;
          beat ~phase:"slow-but-alive"
        done;
        i)
      ~farewell:(fun () -> ())
      ~on_event:(fun (_ : unit) -> ())
      ~on_bye:(fun () -> ())
      ~on_death:(fun ~task:_ ~cause:_ ->
        Alcotest.fail "a beating worker must never be killed")
      ~on_result:(fun _ r ->
        check Alcotest.int "slow task completed" 0 r)
      ()
  in
  check Alcotest.bool "run completes" true (outcome = Pool.Completed)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          tc "spec grammar" test_parse;
          tc "occurrence counting and one-shot disarm"
            test_fire_occurrence_and_one_shot;
          tc "arg filter targets one app" test_fire_arg_filter;
        ] );
      ( "watchdog",
        [
          tc "wedged task requeued once then quarantined hung"
            test_watchdog_requeues_then_quarantines;
          tc "farewell wedge cannot hang shutdown" test_farewell_wedge_bounded;
          tc "heartbeats defer the watchdog" test_heartbeat_defers_the_watchdog;
        ] );
    ]
