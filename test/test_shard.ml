(* The sharded corpus farm: the deterministic --shard K/N partition, the
   parametric corpus generator behind --gen, and the offline merge that
   folds N shard artifact sets back into the unsharded run's — all
   exercised in-process over small generated corpora with throwaway temp
   directories (the shard_check runtest rule covers the same contracts
   through the real binary). *)

module Corpus = Extr_corpus.Corpus
module Spec = Extr_corpus.Spec
module Journal = Extr_resilience.Journal
module Runner = Extr_eval.Runner
module Merge = Extr_eval.Merge
module Stats = Extr_eval.Stats
module Clock = Extr_telemetry.Clock
module Export = Extr_telemetry.Export

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let tmp_dir () =
  let f = Filename.temp_file "shard" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let write path contents =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents)

let gen_seed = 3
let gen_count = 8
let entries () = Corpus.generated ~seed:gen_seed ~count:gen_count

let opts ?shard ~dir tag =
  {
    Runner.default_options with
    Runner.ro_sleep = fst (Clock.sleep_recording ());
    ro_journal = Some (Filename.concat dir (tag ^ ".jsonl"));
    ro_cache_dir = Some (Filename.concat dir (tag ^ "-cache"));
    ro_shard = shard;
    ro_corpus_tag = Some (Printf.sprintf "gen=%d:%d" gen_seed gen_count);
  }

let run_ok options entries =
  match Runner.run options entries with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let merge_ok ~options ~entries ~journals ?(cache_dirs = []) ?expect_shards ()
    =
  match Merge.merge ~options ~entries ~journals ~cache_dirs ?expect_shards ()
  with
  | Ok t -> t
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Partition                                                          *)
(* ------------------------------------------------------------------ *)

let test_shard_partition () =
  let names =
    List.map (fun (e : Corpus.entry) -> e.Corpus.c_app.Spec.a_name)
      (Corpus.generated ~seed:1 ~count:100)
  in
  List.iter
    (fun shards ->
      (* Total: every name lands on exactly one shard, in range. *)
      let counts = Array.make shards 0 in
      List.iter
        (fun n ->
          let k = Runner.shard_index ~shards n in
          check Alcotest.bool "index in range" true (k >= 0 && k < shards);
          counts.(k) <- counts.(k) + 1)
        names;
      check Alcotest.int "partition covers the corpus" 100
        (Array.fold_left ( + ) 0 counts);
      (* Deterministic: the same name always lands on the same shard. *)
      List.iter
        (fun n ->
          check Alcotest.int "stable assignment"
            (Runner.shard_index ~shards n)
            (Runner.shard_index ~shards n))
        names)
    [ 1; 2; 3; 7 ];
  (* The whole corpus on one shard when N = 1. *)
  List.iter
    (fun n -> check Alcotest.int "single shard owns all" 0
        (Runner.shard_index ~shards:1 n))
    names

let test_shard_rejects_bad_spec () =
  let es = entries () in
  let dir = tmp_dir () in
  List.iter
    (fun shard ->
      match
        Runner.run { (opts ~shard ~dir "bad") with Runner.ro_journal = None }
          es
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "out-of-range --shard accepted")
    [ (0, 3); (4, 3); (1, 0) ]

(* ------------------------------------------------------------------ *)
(* Generator                                                          *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  let a = Corpus.generated ~seed:11 ~count:40 in
  let b = Corpus.generated ~seed:11 ~count:40 in
  check Alcotest.int "count honoured" 40 (List.length a);
  let names l =
    List.map (fun (e : Corpus.entry) -> e.Corpus.c_app.Spec.a_name) l
  in
  check Alcotest.(list string) "same seed, same corpus" (names a) (names b);
  let uniq = List.sort_uniq compare (names a) in
  check Alcotest.int "names unique" 40 (List.length uniq);
  let endpoints l =
    List.map
      (fun (e : Corpus.entry) -> List.length e.Corpus.c_app.Spec.a_endpoints)
      l
  in
  check Alcotest.(list int) "same seed, same shapes" (endpoints a)
    (endpoints b);
  let c = Corpus.generated ~seed:12 ~count:40 in
  check Alcotest.bool "different seed, different corpus" true
    (endpoints a <> endpoints c)

let test_generator_rows_sane () =
  List.iter
    (fun (e : Corpus.entry) ->
      let app = e.Corpus.c_app in
      check Alcotest.bool "has endpoints" true (app.Spec.a_endpoints <> []);
      List.iter
        (fun (ep : Spec.endpoint) ->
          check Alcotest.bool "endpoint has a path" true (ep.Spec.e_path <> []))
        app.Spec.a_endpoints)
    (Corpus.generated ~seed:2 ~count:50)

(* ------------------------------------------------------------------ *)
(* strip_shard                                                        *)
(* ------------------------------------------------------------------ *)

let test_strip_shard () =
  let kn = Alcotest.(option (pair int int)) in
  let case config want_base want_kn =
    let base, shard = Merge.strip_shard config in
    check Alcotest.string "base" want_base base;
    check kn "shard" want_kn shard
  in
  case "a;b;v1" "a;b;v1" None;
  case "a;b;v1;shard=2/5" "a;b;v1" (Some (2, 5));
  case "a;b;v1;shard=1/1" "a;b;v1" (Some (1, 1));
  (* Malformed or out-of-range suffixes are ordinary content. *)
  case "a;shard=0/3" "a;shard=0/3" None;
  case "a;shard=4/3" "a;shard=4/3" None;
  case "a;shard=x/y" "a;shard=x/y" None;
  case "a;shard=" "a;shard=" None;
  (* The runner's own fingerprints round-trip. *)
  let o =
    { Runner.default_options with Runner.ro_shard = Some (2, 3) }
  in
  let base, shard = Merge.strip_shard (Runner.journal_fingerprint o) in
  check Alcotest.string "runner base recovered"
    (Runner.config_fingerprint o) base;
  check kn "runner shard recovered" (Some (2, 3)) shard

(* ------------------------------------------------------------------ *)
(* Shard runs + merge                                                 *)
(* ------------------------------------------------------------------ *)

(* One unsharded run and a 2-way shard split over the same generated
   corpus, reused across the merge scenarios below. *)
let with_shard_runs f =
  let dir = tmp_dir () in
  let es = entries () in
  let base_o = opts ~dir "base" in
  let base_run = run_ok base_o es in
  let base_json =
    Runner.report_json ~config:(Runner.journal_fingerprint base_o) base_run
  in
  let shard_o k = opts ~shard:(k, 2) ~dir (Printf.sprintf "s%d" k) in
  let s1 = run_ok (shard_o 1) es and s2 = run_ok (shard_o 2) es in
  check Alcotest.int "shards split the corpus" gen_count
    (List.length s1.Runner.rn_results + List.length s2.Runner.rn_results);
  check Alcotest.bool "both shards own work" true
    (s1.Runner.rn_results <> [] && s2.Runner.rn_results <> []);
  let j k = Filename.concat dir (Printf.sprintf "s%d.jsonl" k) in
  let c k = Filename.concat dir (Printf.sprintf "s%d-cache" k) in
  f ~dir ~es ~base_o ~base_json ~journals:[ j 1; j 2 ]
    ~cache_dirs:[ c 1; c 2 ]

let test_merge_reassembles_unsharded () =
  with_shard_runs
    (fun ~dir ~es ~base_o ~base_json ~journals ~cache_dirs ->
      let t = merge_ok ~options:base_o ~entries:es ~journals ~cache_dirs () in
      check Alcotest.int "clean merge exits 0" 0 (Merge.exit_code t);
      check Alcotest.string "envelope byte-identical to unsharded" base_json
        (Merge.report_json t);
      (* Idempotency: merging merge's own outputs reproduces it. *)
      let mj = Filename.concat dir "merged.jsonl" in
      write mj (Merge.journal_contents t);
      let mc = Filename.concat dir "merged-cache" in
      Sys.mkdir mc 0o755;
      List.iter
        (fun (key, data) -> write (Filename.concat mc (key ^ ".json")) data)
        t.Merge.mg_cache;
      let t2 =
        merge_ok ~options:base_o ~entries:es ~journals:[ mj ]
          ~cache_dirs:[ mc ] ()
      in
      check Alcotest.int "re-merge exits 0" 0 (Merge.exit_code t2);
      check Alcotest.string "re-merge is a no-op" (Merge.report_json t)
        (Merge.report_json t2);
      (* Overlap tolerance: merging every input twice changes nothing. *)
      let t3 =
        merge_ok ~options:base_o ~entries:es ~journals:(journals @ journals)
          ~cache_dirs:(cache_dirs @ cache_dirs) ()
      in
      check Alcotest.string "duplicated shards merge identically" base_json
        (Merge.report_json t3))

let test_merge_missing_shard () =
  with_shard_runs
    (fun ~dir:_ ~es ~base_o ~base_json:_ ~journals ~cache_dirs ->
      let t =
        merge_ok ~options:base_o ~entries:es
          ~journals:[ List.hd journals ]
          ~cache_dirs ()
      in
      (* Shard 1's journal declares N=2, so shard 2's absence is
         inferred even without expect_shards. *)
      check Alcotest.(list int) "missing shard listed" [ 2 ]
        t.Merge.mg_missing_shards;
      check Alcotest.bool "its apps are missing too" true
        (t.Merge.mg_missing_apps <> []);
      check Alcotest.int "partial merge exits 4" 4 (Merge.exit_code t);
      let envelope = Merge.report_json t in
      check Alcotest.bool "envelope names the gap" true
        (let contains ~needle hay =
           let n = String.length needle and h = String.length hay in
           let rec go i =
             i + n <= h && (String.sub hay i n = needle || go (i + 1))
           in
           go 0
         in
         contains ~needle:"\"missing_shards\":[2]" envelope
         && contains ~needle:"missing_apps" envelope))

let test_merge_corrupt_cache_entry () =
  with_shard_runs
    (fun ~dir:_ ~es ~base_o ~base_json:_ ~journals ~cache_dirs ->
      (* Truncate one entry in shard 1's cache: its app keeps its
         journal status but loses its report, and the merge degrades
         (exit 3) instead of aborting. *)
      let dir1 = List.hd cache_dirs in
      (match Sys.readdir dir1 with
      | [||] -> Alcotest.fail "shard 1 cache is empty"
      | files -> write (Filename.concat dir1 files.(0)) "{\"torn");
      let t = merge_ok ~options:base_o ~entries:es ~journals ~cache_dirs () in
      check Alcotest.int "degraded merge exits 3" 3 (Merge.exit_code t);
      check Alcotest.bool "degradation recorded" true
        (List.exists
           (fun (d : Merge.degradation) ->
             d.Merge.md_reason = "corrupt cache entry quarantined")
           t.Merge.mg_degradations);
      check Alcotest.int "every app still present" gen_count
        (List.length t.Merge.mg_run.Runner.rn_results))

let test_merge_rejects_foreign_config () =
  with_shard_runs
    (fun ~dir:_ ~es ~base_o ~base_json:_ ~journals ~cache_dirs ->
      let other =
        { base_o with Runner.ro_corpus_tag = Some "gen=99:99" }
      in
      match Merge.merge ~options:other ~entries:es ~journals ~cache_dirs ()
      with
      | Error msg ->
          check Alcotest.bool "error names the mismatch" true
            (String.length msg > 0)
      | Ok _ -> Alcotest.fail "foreign-config journal accepted")

let test_merge_empty_and_unreadable_journals () =
  with_shard_runs
    (fun ~dir ~es ~base_o ~base_json ~journals ~cache_dirs ->
      (* A zero-byte journal — the stale-lock shape a shard leaves when
         killed between open and header — is an empty shard, not an
         error and not a degradation. *)
      let empty = Filename.concat dir "empty.jsonl" in
      write empty "";
      let t =
        merge_ok ~options:base_o ~entries:es ~journals:(journals @ [ empty ])
          ~cache_dirs ()
      in
      check Alcotest.int "empty journal never degrades" 0
        (Merge.exit_code t);
      check Alcotest.string "envelope unchanged" base_json
        (Merge.report_json t);
      (* A missing journal file degrades (exit 3) but never aborts. *)
      let t2 =
        merge_ok ~options:base_o ~entries:es
          ~journals:(journals @ [ Filename.concat dir "nope.jsonl" ])
          ~cache_dirs ()
      in
      check Alcotest.int "unreadable journal degrades" 3
        (Merge.exit_code t2);
      check Alcotest.int "results unaffected" gen_count
        (List.length t2.Merge.mg_run.Runner.rn_results))

let test_shard_journal_isolation () =
  (* A shard refuses to resume another shard's journal: the shard
     identity is part of the journal fingerprint. *)
  let dir = tmp_dir () in
  let es = entries () in
  ignore (run_ok (opts ~shard:(1, 2) ~dir "s1") es);
  let o2 =
    {
      (opts ~shard:(2, 2) ~dir "s2") with
      Runner.ro_journal = Some (Filename.concat dir "s1.jsonl");
      ro_resume = true;
    }
  in
  match Runner.run o2 es with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shard 2 resumed shard 1's journal"

let test_stats_pools_shard_journals () =
  with_shard_runs
    (fun ~dir:_ ~es:_ ~base_o ~base_json:_ ~journals ~cache_dirs:_ ->
      match Stats.of_artifacts ~journals () with
      | Error e -> Alcotest.fail e
      | Ok st ->
          check Alcotest.int "fleet view covers the corpus" gen_count
            (List.length st.Stats.rs_apps);
          check Alcotest.string "shard suffix stripped from config"
            (Runner.config_fingerprint base_o)
            st.Stats.rs_config)

let () =
  Alcotest.run "shard"
    [
      ( "partition",
        [
          tc "total, in-range, deterministic" test_shard_partition;
          tc "bad K/N rejected" test_shard_rejects_bad_spec;
        ] );
      ( "generator",
        [
          tc "seeded and deterministic" test_generator_deterministic;
          tc "generated rows are analyzable" test_generator_rows_sane;
        ] );
      ( "merge",
        [
          tc "fingerprint round-trip" test_strip_shard;
          tc "reassembles the unsharded run, idempotently"
            test_merge_reassembles_unsharded;
          tc "missing shard is explicit (exit 4)" test_merge_missing_shard;
          tc "corrupt cache entry quarantines (exit 3)"
            test_merge_corrupt_cache_entry;
          tc "foreign configuration refused" test_merge_rejects_foreign_config;
          tc "empty vs unreadable journals" test_merge_empty_and_unreadable_journals;
          tc "shards only resume their own journal"
            test_shard_journal_isolation;
        ] );
      ( "stats",
        [ tc "pools a shard set into one view" test_stats_pools_shard_journals ]
      );
    ]
