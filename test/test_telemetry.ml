(* Telemetry subsystem tests: deterministic clocks, span recording,
   metrics aggregation, exporter output shape, and the end-to-end
   pipeline instrumentation (one span per phase, expected series). *)

module Clock = Extr_telemetry.Clock
module Span = Extr_telemetry.Span
module Metrics = Extr_telemetry.Metrics
module Export = Extr_telemetry.Export
module Json = Extr_httpmodel.Json
module Pipeline = Extr_extractocol.Pipeline
module Corpus = Extr_corpus.Corpus

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Clocks                                                             *)
(* ------------------------------------------------------------------ *)

let test_fake_clock () =
  let c = Clock.fake ~start:10.0 ~step:2.5 () in
  check (Alcotest.float 0.0) "first read" 10.0 (c ());
  check (Alcotest.float 0.0) "second read" 12.5 (c ());
  check (Alcotest.float 0.0) "third read" 15.0 (c ())

let test_manual_clock () =
  let c, advance = Clock.manual ~start:100.0 () in
  check (Alcotest.float 0.0) "stands still" 100.0 (c ());
  check (Alcotest.float 0.0) "still still" 100.0 (c ());
  advance 3.0;
  check (Alcotest.float 0.0) "after advance" 103.0 (c ())

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_disabled () =
  let t = Span.create ~clock:(Clock.fake ()) () in
  let r = Span.with_span ~tracer:t "outer" (fun () -> 42) in
  check Alcotest.int "thunk result" 42 r;
  check Alcotest.int "nothing recorded" 0 (List.length (Span.spans t))

let test_span_nesting () =
  (* Fake clock ticks once per read: outer reads at t=0, inner at 1/2,
     outer close at 3 — so inner lasts 1s, outer 3s, and the recorded
     order is begin order even though inner completes first. *)
  let t = Span.create ~clock:(Clock.fake ()) ~enabled:true () in
  Span.with_span ~tracer:t "outer" (fun () ->
      Span.with_span ~tracer:t ~args:[ ("k", "v") ] "inner" (fun () -> ()));
  match Span.spans t with
  | [ outer; inner ] ->
      check Alcotest.string "outer first" "outer" outer.Span.sp_name;
      check Alcotest.string "inner second" "inner" inner.Span.sp_name;
      check Alcotest.int "outer depth" 0 outer.Span.sp_depth;
      check Alcotest.int "inner depth" 1 inner.Span.sp_depth;
      check (Alcotest.float 0.0) "inner duration" 1.0 (Span.duration_s inner);
      check (Alcotest.float 0.0) "outer duration" 3.0 (Span.duration_s outer);
      check
        Alcotest.(list (pair string string))
        "args recorded"
        [ ("k", "v") ]
        inner.Span.sp_args
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_records_on_raise () =
  let t = Span.create ~clock:(Clock.fake ()) ~enabled:true () in
  (try Span.with_span ~tracer:t "boom" (fun () -> failwith "x") with
  | Failure _ -> ());
  check Alcotest.bool "span recorded despite raise" true
    (Span.find t "boom" <> None);
  (* Depth must be restored so later siblings are not mis-nested. *)
  Span.with_span ~tracer:t "after" (fun () -> ());
  check Alcotest.int "depth restored" 0
    (Option.get (Span.find t "after")).Span.sp_depth

let test_span_reset () =
  let t = Span.create ~clock:(Clock.fake ()) ~enabled:true () in
  Span.with_span ~tracer:t "a" (fun () -> ());
  Span.reset t;
  check Alcotest.int "cleared" 0 (List.length (Span.spans t));
  Span.with_span ~tracer:t "b" (fun () -> ());
  check Alcotest.int "seq restarts" 0 (Option.get (Span.find t "b")).Span.sp_seq

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_aggregation () =
  let r = Metrics.create ~enabled:true () in
  let c = Metrics.counter ~registry:r "reqs" in
  Metrics.incr c;
  Metrics.incr c ~by:4;
  Metrics.incr c ~labels:[ ("app", "ted") ];
  check (Alcotest.float 0.0) "unlabelled series" 5.0 (Metrics.value r "reqs");
  check (Alcotest.float 0.0) "labelled series" 1.0
    (Metrics.value ~labels:[ ("app", "ted") ] r "reqs")

let test_label_order_irrelevant () =
  let r = Metrics.create ~enabled:true () in
  let c = Metrics.counter ~registry:r "reqs" in
  Metrics.incr c ~labels:[ ("a", "1"); ("b", "2") ];
  Metrics.incr c ~labels:[ ("b", "2"); ("a", "1") ];
  check (Alcotest.float 0.0) "same series either order" 2.0
    (Metrics.value ~labels:[ ("b", "2"); ("a", "1") ] r "reqs")

let test_gauge_last_wins () =
  let r = Metrics.create ~enabled:true () in
  let g = Metrics.gauge ~registry:r "elapsed" in
  Metrics.set g 1.5;
  Metrics.set g 2.5;
  check (Alcotest.float 0.0) "last value" 2.5 (Metrics.value r "elapsed")

let test_histogram_buckets () =
  let r = Metrics.create ~enabled:true () in
  let h = Metrics.histogram ~registry:r ~buckets:[ 1.0; 10.0 ] "sizes" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0 ];
  match Metrics.find r "sizes" with
  | None -> Alcotest.fail "histogram series missing"
  | Some s ->
      check Alcotest.int "count" 3 s.Metrics.sa_count;
      check (Alcotest.float 1e-9) "sum" 55.5 s.Metrics.sa_sum;
      (* Cumulative: le=1 holds 1, le=10 holds 2, +inf holds all 3. *)
      let counts = List.map snd s.Metrics.sa_buckets in
      check Alcotest.(list int) "cumulative buckets" [ 1; 2; 3 ] counts

let test_disabled_registry_noop () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "reqs" in
  Metrics.incr c ~by:100;
  check Alcotest.int "no series recorded" 0
    (List.length (Metrics.snapshot r))

let test_kind_mismatch_rejected () =
  let r = Metrics.create ~enabled:true () in
  ignore (Metrics.counter ~registry:r "dual");
  check Alcotest.bool "re-register as gauge raises" true
    (try
       ignore (Metrics.gauge ~registry:r "dual");
       false
     with Invalid_argument _ -> true)

let test_metrics_reset () =
  let r = Metrics.create ~enabled:true () in
  let c = Metrics.counter ~registry:r "reqs" in
  Metrics.incr c ~by:7;
  Metrics.reset r;
  check (Alcotest.float 0.0) "cleared" 0.0 (Metrics.value r "reqs");
  Metrics.incr c;
  check (Alcotest.float 0.0) "handle survives reset" 1.0 (Metrics.value r "reqs")

let render_samples samples =
  List.map
    (fun (s : Metrics.sample) ->
      Fmt.str "%s%a count=%d sum=%g buckets=%a" s.Metrics.sa_name
        Fmt.(Dump.list (Dump.pair string string))
        s.Metrics.sa_labels s.Metrics.sa_count s.Metrics.sa_sum
        Fmt.(Dump.list (Dump.pair float int))
        s.Metrics.sa_buckets)
    samples

let test_merge_samples () =
  (* A worker's per-task snapshot merged into a fresh registry must
     reproduce the worker's series exactly — counters, a labelled
     series, gauge last-wins and decumulated histogram buckets. *)
  let worker = Metrics.create ~enabled:true () in
  let c = Metrics.counter ~registry:worker "reqs" in
  Metrics.incr c ~by:3;
  Metrics.incr c ~labels:[ ("app", "ted") ];
  Metrics.set (Metrics.gauge ~registry:worker "elapsed") 2.5;
  let h = Metrics.histogram ~registry:worker ~buckets:[ 1.0; 10.0 ] "sizes" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0 ];
  let delta = Metrics.snapshot worker in
  let coord = Metrics.create ~enabled:true () in
  Metrics.merge_samples coord delta;
  check
    Alcotest.(list string)
    "merged registry snapshots identically" (render_samples delta)
    (render_samples (Metrics.snapshot coord));
  (* Merging a second worker's delta accumulates counts. *)
  Metrics.merge_samples coord delta;
  check (Alcotest.float 0.0) "counters add across merges" 6.0
    (Metrics.value coord "reqs");
  (match Metrics.find coord "sizes" with
  | Some s ->
      check Alcotest.int "histogram count adds" 6 s.Metrics.sa_count;
      check
        Alcotest.(list int)
        "cumulative buckets add" [ 2; 4; 6 ]
        (List.map snd s.Metrics.sa_buckets)
  | None -> Alcotest.fail "histogram series missing after merge");
  (* A disabled coordinator registry still accepts merges: the corpus
     pool must not lose worker samples when --metrics-out is off. *)
  let quiet = Metrics.create () in
  Metrics.merge_samples quiet delta;
  check (Alcotest.float 0.0) "merge bypasses the enabled flag" 3.0
    (Metrics.value quiet "reqs")

let test_gauge_merge_deterministic () =
  (* Regression: gauges used to merge last-wins, so the coordinator's
     merged value depended on worker completion order.  The policy is
     labelled max — merging two workers' deltas in either order must
     yield the same registry. *)
  let snap v =
    let w = Metrics.create ~enabled:true () in
    Metrics.set (Metrics.gauge ~registry:w "elapsed") v;
    Metrics.snapshot w
  in
  let merge order =
    let coord = Metrics.create ~enabled:true () in
    List.iter (Metrics.merge_samples coord) order;
    Metrics.value coord "elapsed"
  in
  let a = snap 2.5 and b = snap 7.0 in
  check (Alcotest.float 0.0) "a then b" 7.0 (merge [ a; b ]);
  check (Alcotest.float 0.0) "b then a" 7.0 (merge [ b; a ]);
  (* Negative gauges must not be clamped by the empty registry's 0. *)
  let n1 = snap (-3.0) and n2 = snap (-8.0) in
  check (Alcotest.float 0.0) "negative max" (-3.0) (merge [ n2; n1 ])

let test_merge_samples_edge_cases () =
  (* An empty snapshot (a worker that measured nothing, a shard that
     owned no apps) merges as a no-op, in either direction. *)
  let full = Metrics.create ~enabled:true () in
  Metrics.incr (Metrics.counter ~registry:full "reqs") ~by:5;
  let before = render_samples (Metrics.snapshot full) in
  Metrics.merge_samples full [];
  check
    Alcotest.(list string)
    "empty delta is a no-op" before
    (render_samples (Metrics.snapshot full));
  let empty = Metrics.create ~enabled:true () in
  Metrics.merge_samples empty (Metrics.snapshot full);
  check
    Alcotest.(list string)
    "merge into empty reproduces the source" before
    (render_samples (Metrics.snapshot empty));
  (* A zero-bucket histogram (only the +inf overflow slot) still counts
     and sums across merges. *)
  let w = Metrics.create ~enabled:true () in
  let h = Metrics.histogram ~registry:w ~buckets:[] "odd" in
  List.iter (Metrics.observe h) [ 1.0; 2.0 ];
  let delta = Metrics.snapshot w in
  let coord = Metrics.create ~enabled:true () in
  Metrics.merge_samples coord delta;
  Metrics.merge_samples coord delta;
  (match Metrics.find coord "odd" with
  | Some s ->
      check Alcotest.int "zero-bucket count adds" 4 s.Metrics.sa_count;
      check (Alcotest.float 1e-9) "zero-bucket sum adds" 6.0 s.Metrics.sa_sum;
      check
        Alcotest.(list int)
        "only the overflow slot" [ 4 ]
        (List.map snd s.Metrics.sa_buckets)
  | None -> Alcotest.fail "zero-bucket histogram missing after merge");
  (* Three-way associativity: (a+b)+c = a+(b+c) — the shard merge folds
     snapshots in CLI argument order, so grouping must not matter. *)
  let shard i =
    let w = Metrics.create ~enabled:true () in
    Metrics.incr (Metrics.counter ~registry:w "reqs") ~by:i;
    Metrics.set (Metrics.gauge ~registry:w "peak") (float_of_int (10 * i));
    let h = Metrics.histogram ~registry:w ~buckets:[ 1.0; 10.0 ] "lat" in
    List.iter (Metrics.observe h) [ 0.5 *. float_of_int i; 5.0; 50.0 ];
    Metrics.snapshot w
  in
  let a = shard 1 and b = shard 2 and c = shard 3 in
  let fold snaps =
    let r = Metrics.create ~enabled:true () in
    List.iter (Metrics.merge_samples r) snaps;
    render_samples (Metrics.snapshot r)
  in
  let via l =
    (* fold the first group into one snapshot, then merge the rest *)
    let r = Metrics.create ~enabled:true () in
    List.iter (Metrics.merge_samples r) l;
    Metrics.snapshot r
  in
  check
    Alcotest.(list string)
    "(a+b)+c = a+(b+c)"
    (fold [ via [ a; b ]; c ])
    (fold [ a; via [ b; c ] ])

let test_percentile () =
  let w = Metrics.create ~enabled:true () in
  let h =
    Metrics.histogram ~registry:w ~buckets:[ 10.0; 100.0; 1000.0 ] "lat"
  in
  (* 100 observations: 50 in (0,10], 40 in (10,100], 10 in (100,1000]. *)
  for _ = 1 to 50 do Metrics.observe h 5.0 done;
  for _ = 1 to 40 do Metrics.observe h 50.0 done;
  for _ = 1 to 10 do Metrics.observe h 500.0 done;
  match Metrics.find w "lat" with
  | None -> Alcotest.fail "series missing"
  | Some s ->
      (* Rank 50 is exactly the first bucket's cumulative count: linear
         interpolation lands on its upper bound. *)
      check (Alcotest.float 1e-9) "p50" 10.0
        (Option.get (Metrics.percentile s 50.0));
      check (Alcotest.float 1e-9) "p90" 100.0
        (Option.get (Metrics.percentile s 90.0));
      (* Halfway into the second bucket: 10 + (70-50)/40 * 90. *)
      check (Alcotest.float 1e-9) "p70 interpolates" 55.0
        (Option.get (Metrics.percentile s 70.0));
      check (Alcotest.float 1e-9) "p100 = max finite bound" 1000.0
        (Option.get (Metrics.percentile s 100.0));
      (* Overflow ranks clamp to the largest finite bound. *)
      let w2 = Metrics.create ~enabled:true () in
      let h2 = Metrics.histogram ~registry:w2 ~buckets:[ 10.0 ] "o" in
      Metrics.observe h2 99.0;
      let s2 = Option.get (Metrics.find w2 "o") in
      check (Alcotest.float 1e-9) "overflow clamps" 10.0
        (Option.get (Metrics.percentile s2 50.0));
      (* Non-histograms and empty series have no percentiles. *)
      let c = Metrics.counter ~registry:w "n" in
      Metrics.incr c;
      check Alcotest.bool "counter has none" true
        (Metrics.percentile (Option.get (Metrics.find w "n")) 50.0 = None)

let test_percentile_edges () =
  (* Empty histogram: registered, never observed — no percentile. *)
  let r = Metrics.create ~enabled:true () in
  let _ = Metrics.histogram ~registry:r ~buckets:[ 10.0 ] "empty" in
  (match Metrics.find r "empty" with
  | None -> ()  (* never observed: the series may not even exist *)
  | Some s ->
      check Alcotest.bool "empty histogram has no percentile" true
        (Metrics.percentile s 50.0 = None));
  (* Single finite bucket: every rank interpolates inside it. *)
  let h = Metrics.histogram ~registry:r ~buckets:[ 10.0 ] "one" in
  Metrics.observe h 5.0;
  Metrics.observe h 5.0;
  let s = Option.get (Metrics.find r "one") in
  check (Alcotest.float 1e-9) "p50 interpolates to mid-bucket" 5.0
    (Option.get (Metrics.percentile s 50.0));
  check (Alcotest.float 1e-9) "p100 is the bucket bound" 10.0
    (Option.get (Metrics.percentile s 100.0));
  (* Out-of-range quantiles clamp instead of crashing. *)
  check (Alcotest.float 1e-9) "q < 0 clamps to 0" 0.0
    (Option.get (Metrics.percentile s (-5.0)));
  check (Alcotest.float 1e-9) "q > 100 clamps to 100" 10.0
    (Option.get (Metrics.percentile s 150.0));
  (* All mass in the overflow bucket of a bucketless histogram: the
     largest finite bound is vacuously 0 — the estimate degrades to the
     documented lower bound, it must not raise or go negative. *)
  let h2 = Metrics.histogram ~registry:r ~buckets:[] "overflow" in
  Metrics.observe h2 99.0;
  let s2 = Option.get (Metrics.find r "overflow") in
  check (Alcotest.float 1e-9) "bucketless overflow clamps to 0" 0.0
    (Option.get (Metrics.percentile s2 50.0))

(* ------------------------------------------------------------------ *)
(* Span self time                                                     *)
(* ------------------------------------------------------------------ *)

let test_span_self_time () =
  (* Fake clock, one tick per read: a@0 { b@1 { c@2..3 } ..4 } ..5 —
     cumulative c=1, b=3, a=5; self c=1, b=2, a=2. *)
  let t = Span.create ~clock:(Clock.fake ()) ~enabled:true () in
  Span.with_span ~tracer:t "a" (fun () ->
      Span.with_span ~tracer:t "b" (fun () ->
          Span.with_span ~tracer:t "c" (fun () -> ())));
  let spans = Span.spans t in
  let stacked = Span.stacked spans in
  check Alcotest.int "one row per span" 3 (List.length stacked);
  List.iter
    (fun (path, sp, self) ->
      (* self + direct children's cumulative = own cumulative. *)
      let expected_path =
        match sp.Span.sp_name with
        | "a" -> [ "a" ]
        | "b" -> [ "a"; "b" ]
        | _ -> [ "a"; "b"; "c" ]
      in
      check Alcotest.(list string)
        (sp.Span.sp_name ^ " path is root-first")
        expected_path path;
      let children =
        List.filter
          (fun s -> s.Span.sp_depth = sp.Span.sp_depth + 1)
          spans
      in
      let child_sum =
        List.fold_left (fun acc s -> acc +. Span.duration_s s) 0.0 children
      in
      check (Alcotest.float 1e-9)
        (sp.Span.sp_name ^ ": self + children = cumulative")
        (Span.duration_s sp) (self +. child_sum))
    stacked;
  check (Alcotest.float 1e-9) "self_s a" 2.0
    (Span.self_s spans (Option.get (Span.find t "a")));
  check (Alcotest.float 1e-9) "self_s b" 2.0
    (Span.self_s spans (Option.get (Span.find t "b")));
  check (Alcotest.float 1e-9) "self_s c" 1.0
    (Span.self_s spans (Option.get (Span.find t "c")))

(* ------------------------------------------------------------------ *)
(* Exporters                                                          *)
(* ------------------------------------------------------------------ *)

let test_chrome_trace_valid_json () =
  let t = Span.create ~clock:(Clock.fake ()) ~enabled:true () in
  Span.with_span ~tracer:t ~args:[ ("app", "x\"y") ] "outer" (fun () ->
      Span.with_span ~tracer:t "inner" (fun () -> ()));
  let trace = Export.chrome_trace (Span.spans t) in
  let json = Json.of_string trace in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check Alcotest.int "one event per span" 2 (List.length events);
  let names =
    List.filter_map
      (fun ev ->
        match Json.member "name" ev with Some (Json.Str s) -> Some s | _ -> None)
      events
  in
  check Alcotest.(list string) "names in begin order" [ "outer"; "inner" ] names;
  List.iter
    (fun ev ->
      (match Json.member "ph" ev with
      | Some (Json.Str "X") -> ()
      | _ -> Alcotest.fail "not a complete event");
      match (Json.member "ts" ev, Json.member "dur" ev) with
      | Some (Json.Int ts), Some (Json.Int dur) ->
          check Alcotest.bool "non-negative ts/dur" true (ts >= 0 && dur >= 0)
      | _ -> Alcotest.fail "ts/dur not integers")
    events;
  (* The inner span begins 1 (fake-clock) second after the outer one. *)
  let ts_of ev =
    match Json.member "ts" ev with Some (Json.Int n) -> n | _ -> -1
  in
  check Alcotest.int "outer rebased to 0" 0 (ts_of (List.nth events 0));
  check Alcotest.int "inner offset 1s" 1_000_000 (ts_of (List.nth events 1))

let test_metrics_json_shape () =
  let r = Metrics.create ~enabled:true () in
  let c = Metrics.counter ~registry:r "reqs" in
  Metrics.incr c ~labels:[ ("app", "ted") ] ~by:3;
  let h = Metrics.histogram ~registry:r ~buckets:[ 2.0 ] "sizes" in
  Metrics.observe h 1.0;
  let json = Json.of_string (Export.metrics_json r) in
  let series =
    match Json.member "metrics" json with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no metrics array"
  in
  check Alcotest.int "two series" 2 (List.length series);
  let counter =
    List.find
      (fun s -> Json.member "name" s = Some (Json.Str "reqs"))
      series
  in
  check Alcotest.bool "label object" true
    (Json.member "labels" counter = Some (Json.Obj [ ("app", Json.Str "ted") ]));
  check Alcotest.bool "count field" true
    (Json.member "count" counter = Some (Json.Int 3));
  let histo =
    List.find
      (fun s -> Json.member "name" s = Some (Json.Str "sizes"))
      series
  in
  (match Json.member "buckets" histo with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "histogram without buckets");
  (* Histogram series carry percentile summaries alongside the raw
     buckets; non-histograms don't. *)
  (match Json.member "p50" histo with
  | Some (Json.Float _ | Json.Int _) -> ()
  | _ -> Alcotest.fail "histogram without p50");
  check Alcotest.bool "p95 present" true (Json.member "p95" histo <> None);
  check Alcotest.bool "p99 present" true (Json.member "p99" histo <> None);
  check Alcotest.bool "counter has no percentiles" true
    (Json.member "p50" counter = None)

let test_chrome_trace_lanes () =
  (* Two lanes on one shared clock: each gets a thread_name metadata
     record, spans land on their lane's tid, per-lane timestamps are
     re-sorted monotonic, and both lanes share the earliest begin as
     epoch (the coordinator lane's first span starts later, so its first
     ts is positive). *)
  let clock = Clock.fake ~start:100.0 ~step:1.0 () in
  let wa = Span.create ~clock ~enabled:true () in
  Span.with_span ~tracer:wa "a1" (fun () -> ());
  let wb = Span.create ~clock ~enabled:true () in
  Span.with_span ~tracer:wb "b1" (fun () -> ());
  let trace =
    Export.chrome_trace_lanes
      [
        ("coordinator", 0, Span.spans wb);
        ("worker 41", 1, Span.spans wa);
      ]
  in
  let json = Json.of_string trace in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents"
  in
  let metas =
    List.filter (fun e -> Json.member "ph" e = Some (Json.Str "M")) events
  in
  let lane_names =
    List.filter_map
      (fun e ->
        match Json.member "args" e with
        | Some args -> (
            match Json.member "name" args with
            | Some (Json.Str n) -> Some n
            | _ -> None)
        | None -> None)
      metas
  in
  check
    Alcotest.(list string)
    "one thread_name per lane"
    [ "coordinator"; "worker 41" ]
    lane_names;
  let ts_of e =
    match Json.member "ts" e with
    | Some (Json.Float f) -> f
    | Some (Json.Int n) -> float_of_int n
    | _ -> Alcotest.fail "span without ts"
  in
  let spans_on tid =
    List.filter
      (fun e ->
        Json.member "ph" e = Some (Json.Str "X")
        && Json.member "tid" e = Some (Json.Int tid))
      events
  in
  check Alcotest.int "coordinator lane spans" 1 (List.length (spans_on 0));
  check Alcotest.int "worker lane spans" 1 (List.length (spans_on 1));
  (* Shared epoch: worker a began at 100 (epoch), coordinator b at 102. *)
  check (Alcotest.float 0.0) "worker rebased to epoch" 0.0
    (ts_of (List.hd (spans_on 1)));
  check (Alcotest.float 0.0) "coordinator shares the epoch" 2e6
    (ts_of (List.hd (spans_on 0)))

let test_metrics_json_empty_registry () =
  (* An empty registry exports a well-formed document with an empty
     series array — and registration alone records nothing. *)
  let r = Metrics.create ~enabled:true () in
  (match Json.member "metrics" (Json.of_string (Export.metrics_json r)) with
  | Some (Json.List []) -> ()
  | _ -> Alcotest.fail "empty registry must export an empty metrics array");
  ignore (Metrics.counter ~registry:r "silent");
  ignore (Metrics.histogram ~registry:r "sizes");
  (match Json.member "metrics" (Json.of_string (Export.metrics_json r)) with
  | Some (Json.List []) -> ()
  | _ -> Alcotest.fail "registration without observations must not export");
  (* The human-readable summary also renders. *)
  check Alcotest.bool "summary renders" true
    (String.length (Fmt.str "%a" Metrics.pp_summary r) >= 0)

let test_chrome_trace_escapes_args () =
  (* Span args carrying quotes, backslashes and control characters must
     still yield parseable JSON with the values intact. *)
  let t = Span.create ~clock:(Clock.fake ()) ~enabled:true () in
  let nasty = "a\"b\\c\nd\te" in
  Span.with_span ~tracer:t ~args:[ ("app", nasty) ] "x" (fun () -> ());
  let json = Json.of_string (Export.chrome_trace (Span.spans t)) in
  match Json.member "traceEvents" json with
  | Some (Json.List [ ev ]) -> (
      match Json.member "args" ev with
      | Some args ->
          check Alcotest.bool "arg value survives escaping" true
            (Json.member "app" args = Some (Json.Str nasty))
      | None -> Alcotest.fail "args object missing")
  | _ -> Alcotest.fail "expected exactly one event"

let test_chrome_trace_raising_span () =
  (* A span closed by an exception still exports as a complete event. *)
  let t = Span.create ~clock:(Clock.fake ()) ~enabled:true () in
  (try Span.with_span ~tracer:t "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  let json = Json.of_string (Export.chrome_trace (Span.spans t)) in
  match Json.member "traceEvents" json with
  | Some (Json.List [ ev ]) ->
      check Alcotest.bool "name" true
        (Json.member "name" ev = Some (Json.Str "boom"));
      (match Json.member "dur" ev with
      | Some (Json.Int d) -> check Alcotest.bool "dur non-negative" true (d >= 0)
      | _ -> Alcotest.fail "dur missing")
  | _ -> Alcotest.fail "raising span not exported"

let test_write_file_atomic () =
  let path = Filename.temp_file "telemetry" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Export.write_file path "first";
  Export.write_file path "second";
  check Alcotest.string "rename replaced the contents" "second"
    (In_channel.with_open_text path In_channel.input_all);
  (* No temp droppings left next to the target. *)
  let dir = Filename.dirname path in
  let prefix = "." ^ Filename.basename path in
  let leftovers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f >= String.length prefix
           && String.sub f 0 (String.length prefix) = prefix)
  in
  check Alcotest.(list string) "no temp files left" [] leftovers

let test_folded_export () =
  let t = Span.create ~clock:(Clock.fake ()) ~enabled:true () in
  Span.with_span ~tracer:t "a" (fun () ->
      Span.with_span ~tracer:t "b" (fun () ->
          Span.with_span ~tracer:t "c" (fun () -> ())));
  (* Self times in µs: a=2s, b=2s, c=1s; lines sorted by stack. *)
  check Alcotest.string "folded lines"
    "a 2000000\na;b 2000000\na;b;c 1000000\n"
    (Export.folded (Span.spans t));
  (* Two lanes with the same stack fold together by summing. *)
  let t2 = Span.create ~clock:(Clock.fake ()) ~enabled:true () in
  Span.with_span ~tracer:t2 "a" (fun () -> ());
  (* "a" weighs 2s of self time in the first lane + 1s in the second. *)
  check Alcotest.string "lanes merge by summing"
    "a 3000000\na;b 2000000\na;b;c 1000000\n"
    (Export.folded_lanes [ Span.spans t; Span.spans t2 ])

(* ------------------------------------------------------------------ *)
(* Method-level profiler                                              *)
(* ------------------------------------------------------------------ *)

module Profile = Extr_telemetry.Profile

let test_profile_disabled_noop () =
  let p = Profile.create () in
  let cu = Profile.cursor ~profile:p ~phase:"ph" ~render:Fun.id () in
  Profile.visit cu "m1";
  Profile.spend cu 5;
  Profile.add_facts cu 2;
  Profile.close cu;
  Profile.record_waste p ~scope:"app" ~touched:3 ~contributing:1;
  check Alcotest.int "no entries when disabled" 0
    (List.length (Profile.entries p));
  check Alcotest.int "no waste when disabled" 0
    (List.length (Profile.wastes p))

let test_profile_cursor_accounting () =
  let clock, advance = Clock.manual ~start:0.0 () in
  let p = Profile.create ~clock ~enabled:true () in
  let cu = Profile.cursor ~profile:p ~phase:"ph" ~render:Fun.id () in
  Profile.visit cu "m1";
  Profile.spend cu 3;
  Profile.add_facts cu 1;
  advance 2.0;
  (* Same method again: one more visit, no switch, no time flushed yet. *)
  Profile.visit cu "m1";
  Profile.spend cu 2;
  advance 1.0;
  (* Switch: the 3 elapsed seconds flush to m1. *)
  Profile.visit cu "m2";
  advance 4.0;
  Profile.close cu;
  match Profile.entries p with
  | [ e1; e2 ] ->
      check Alcotest.string "m1 first (sorted)" "m1" e1.Profile.e_meth;
      check Alcotest.string "phase recorded" "ph" e1.Profile.e_phase;
      check (Alcotest.float 1e-9) "m1 time spans both visits" 3.0
        e1.Profile.e_time_s;
      check Alcotest.int "m1 visits" 2 e1.Profile.e_visits;
      check Alcotest.int "m1 fuel" 5 e1.Profile.e_fuel;
      check Alcotest.int "m1 facts" 1 e1.Profile.e_facts;
      check Alcotest.string "m2 second" "m2" e2.Profile.e_meth;
      check (Alcotest.float 1e-9) "m2 time flushed on close" 4.0
        e2.Profile.e_time_s;
      check Alcotest.int "m2 visits" 1 e2.Profile.e_visits
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)

let test_profile_merge_commutes () =
  let mk l =
    {
      Profile.sn_entries =
        List.map
          (fun (ph, m, t, f, v, fa) ->
            {
              Profile.e_phase = ph;
              e_meth = m;
              e_time_s = t;
              e_fuel = f;
              e_visits = v;
              e_facts = fa;
            })
          l;
      sn_wastes = [];
    }
  in
  let a = mk [ ("ph", "m1", 1.0, 10, 2, 1); ("ph", "m2", 0.5, 5, 1, 0) ] in
  let b = mk [ ("ph", "m1", 2.0, 20, 3, 4); ("zz", "m3", 0.1, 1, 1, 0) ] in
  let p1 = Profile.create ~enabled:true () in
  Profile.merge p1 a;
  Profile.merge p1 b;
  let p2 = Profile.create ~enabled:true () in
  Profile.merge p2 b;
  Profile.merge p2 a;
  check Alcotest.bool "merge order does not change the table" true
    (Profile.entries p1 = Profile.entries p2);
  match Profile.entries p1 with
  | [ m1; m2; m3 ] ->
      check Alcotest.string "sorted by (phase, meth)" "m1" m1.Profile.e_meth;
      check Alcotest.int "fuel added" 30 m1.Profile.e_fuel;
      check Alcotest.int "visits added" 5 m1.Profile.e_visits;
      check Alcotest.int "facts added" 5 m1.Profile.e_facts;
      check (Alcotest.float 1e-9) "times added" 3.0 m1.Profile.e_time_s;
      check Alcotest.string "m2 kept" "m2" m2.Profile.e_meth;
      check Alcotest.string "other phase last" "zz" m3.Profile.e_phase
  | es -> Alcotest.failf "expected 3 entries, got %d" (List.length es)

let test_profile_marks_and_waste () =
  let p = Profile.create ~enabled:true () in
  let cu = Profile.cursor ~profile:p ~phase:"ph" ~render:Fun.id () in
  let g1 = Profile.mark p in
  Profile.visit cu "m1";
  Profile.close cu;
  let g2 = Profile.mark p in
  Profile.visit cu "m2";
  Profile.close cu;
  check
    Alcotest.(list string)
    "all methods since the first mark" [ "m1"; "m2" ]
    (Profile.methods_since p g1);
  check
    Alcotest.(list string)
    "only the second run's methods since its mark" [ "m2" ]
    (Profile.methods_since p g2);
  Profile.record_waste p ~scope:"b-app" ~touched:4 ~contributing:1;
  Profile.record_waste p ~scope:"a-app" ~touched:2 ~contributing:2;
  (match Profile.wastes p with
  | [ w1; w2 ] ->
      check Alcotest.string "stable-sorted by scope" "a-app" w1.Profile.w_scope;
      check (Alcotest.float 1e-9) "fully contributing: no waste" 0.0
        (Profile.waste_ratio w1);
      check (Alcotest.float 1e-9) "3 of 4 wasted" 0.75 (Profile.waste_ratio w2)
  | ws -> Alcotest.failf "expected 2 waste rows, got %d" (List.length ws));
  check (Alcotest.float 1e-9) "zero touched is not a division" 0.0
    (Profile.waste_ratio
       { Profile.w_scope = "z"; w_touched = 0; w_contributing = 0 })

let test_profile_json_shape () =
  let p = Profile.create ~enabled:true () in
  Profile.merge p
    {
      Profile.sn_entries =
        [
          {
            Profile.e_phase = "ph";
            e_meth = "m";
            e_time_s = 0.25;
            e_fuel = 7;
            e_visits = 3;
            e_facts = 1;
          };
        ];
      sn_wastes = [ { Profile.w_scope = "app"; w_touched = 4; w_contributing = 3 } ];
    };
  let j = Json.of_string (Export.profile_json ~phases:[ ("pipeline.ph", 0.5, 0.5) ] p) in
  (match Json.member "profile" j with
  | Some (Json.List [ row ]) ->
      check Alcotest.bool "method member" true
        (Json.member "method" row = Some (Json.Str "m"));
      check Alcotest.bool "fuel member" true
        (Json.member "fuel" row = Some (Json.Int 7))
  | _ -> Alcotest.fail "profile rows missing");
  (match Json.member "waste" j with
  | Some (Json.List [ w ]) ->
      check Alcotest.bool "touched member" true
        (Json.member "touched_methods" w = Some (Json.Int 4));
      (match Json.member "waste_ratio" w with
      | Some (Json.Float r) -> check (Alcotest.float 1e-9) "ratio" 0.25 r
      | _ -> Alcotest.fail "waste_ratio missing")
  | _ -> Alcotest.fail "waste rows missing");
  match Json.member "phases" j with
  | Some (Json.List [ ph ]) ->
      check Alcotest.bool "phase member" true
        (Json.member "phase" ph = Some (Json.Str "pipeline.ph"))
  | _ -> Alcotest.fail "phases rollup missing"

(* ------------------------------------------------------------------ *)
(* Log setup                                                          *)
(* ------------------------------------------------------------------ *)

let test_level_of_string () =
  let open Extr_telemetry.Log_setup in
  check Alcotest.bool "debug" true
    (level_of_string "DEBUG" = Ok (Some Logs.Debug));
  check Alcotest.bool "info" true
    (level_of_string "info" = Ok (Some Logs.Info));
  check Alcotest.bool "warn alias" true
    (level_of_string "warn" = Ok (Some Logs.Warning));
  check Alcotest.bool "quiet disables" true (level_of_string "quiet" = Ok None);
  check Alcotest.bool "off disables" true (level_of_string "off" = Ok None);
  match level_of_string "bogus" with
  | Error msg ->
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i =
          i + n <= h && (String.sub hay i n = needle || go (i + 1))
        in
        go 0
      in
      check Alcotest.bool "error names the input" true (contains msg "bogus")
  | Ok _ -> Alcotest.fail "bogus level accepted"

(* ------------------------------------------------------------------ *)
(* Pipeline integration                                               *)
(* ------------------------------------------------------------------ *)

let with_default_telemetry f =
  Span.reset Span.default;
  Metrics.reset Metrics.default;
  Span.set_enabled Span.default true;
  Metrics.set_enabled Metrics.default true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled Span.default false;
      Metrics.set_enabled Metrics.default false)
    f

let test_pipeline_spans () =
  with_default_telemetry @@ fun () ->
  let e = Option.get (Corpus.find (Corpus.case_studies ()) "SharedDP") in
  ignore (Pipeline.analyze (Lazy.force e.Corpus.c_apk));
  let root =
    match Span.find Span.default "pipeline.analyze" with
    | Some sp -> sp
    | None -> Alcotest.fail "no root span"
  in
  check Alcotest.bool "root duration non-negative" true
    (Span.duration_s root >= 0.0);
  List.iter
    (fun phase ->
      let name = "pipeline." ^ phase in
      let matching =
        List.filter
          (fun sp -> sp.Span.sp_name = name)
          (Span.spans Span.default)
      in
      check Alcotest.int (name ^ " appears once") 1 (List.length matching);
      let sp = List.hd matching in
      check Alcotest.bool (name ^ " nested under root") true
        (sp.Span.sp_depth = 1
        && sp.Span.sp_begin_s >= root.Span.sp_begin_s
        && sp.Span.sp_end_s <= root.Span.sp_end_s);
      check Alcotest.bool (name ^ " duration non-negative") true
        (Span.duration_s sp >= 0.0))
    Pipeline.phase_names

let test_pipeline_metrics () =
  with_default_telemetry @@ fun () ->
  let e = Option.get (Corpus.find (Corpus.case_studies ()) "SharedDP") in
  ignore (Pipeline.analyze (Lazy.force e.Corpus.c_apk));
  let positive name =
    check Alcotest.bool (name ^ " > 0") true (Metrics.value Metrics.default name > 0.0)
  in
  positive "slicer.demarcation_points";
  check Alcotest.bool "slicer.slice_stmts{kind=request} > 0" true
    (Metrics.value
       ~labels:[ ("kind", "request") ]
       Metrics.default "slicer.slice_stmts"
    > 0.0);
  positive "taint.backward.worklist_steps";
  positive "interp.statements";
  positive "interp.transactions";
  positive "pairing.pairs";
  check Alcotest.bool "per-app transaction counter" true
    (Metrics.value ~labels:[ ("app", "SharedDP") ] Metrics.default
       "pipeline.transactions"
    > 0.0)

let test_pipeline_disabled_records_nothing () =
  Span.reset Span.default;
  Metrics.reset Metrics.default;
  let e = Option.get (Corpus.find (Corpus.case_studies ()) "SharedDP") in
  ignore (Pipeline.analyze (Lazy.force e.Corpus.c_apk));
  check Alcotest.int "no spans when disabled" 0
    (List.length (Span.spans Span.default));
  check Alcotest.int "no series when disabled" 0
    (List.length (Metrics.snapshot Metrics.default))

let () =
  Alcotest.run "telemetry"
    [
      ( "clock",
        [ tc "fake advances per read" test_fake_clock;
          tc "manual advances on demand" test_manual_clock ] );
      ( "span",
        [
          tc "disabled tracer records nothing" test_span_disabled;
          tc "nesting, order, durations" test_span_nesting;
          tc "recorded on raise, depth restored" test_span_records_on_raise;
          tc "reset clears and restarts seq" test_span_reset;
          tc "self + children = cumulative" test_span_self_time;
        ] );
      ( "metrics",
        [
          tc "counter aggregation with labels" test_counter_aggregation;
          tc "label order canonicalized" test_label_order_irrelevant;
          tc "gauge last-wins" test_gauge_last_wins;
          tc "histogram cumulative buckets" test_histogram_buckets;
          tc "disabled registry is a no-op" test_disabled_registry_noop;
          tc "kind mismatch rejected" test_kind_mismatch_rejected;
          tc "reset keeps registrations" test_metrics_reset;
          tc "worker deltas merge exactly" test_merge_samples;
          tc "gauge merge is order-independent" test_gauge_merge_deterministic;
          tc "merge edge cases: empty, zero-bucket, associativity"
            test_merge_samples_edge_cases;
          tc "histogram percentile estimation" test_percentile;
          tc "percentile edge cases" test_percentile_edges;
        ] );
      ( "export",
        [
          tc "chrome trace is valid matched JSON" test_chrome_trace_valid_json;
          tc "multi-lane trace merge" test_chrome_trace_lanes;
          tc "metrics snapshot shape" test_metrics_json_shape;
          tc "empty registry exports cleanly" test_metrics_json_empty_registry;
          tc "chrome trace escapes arg values" test_chrome_trace_escapes_args;
          tc "raising span still exported" test_chrome_trace_raising_span;
          tc "write_file is atomic" test_write_file_atomic;
          tc "collapsed-stack folded export" test_folded_export;
        ] );
      ( "profile",
        [
          tc "disabled profiler is a no-op" test_profile_disabled_noop;
          tc "cursor time/fuel/visit/fact accounting"
            test_profile_cursor_accounting;
          tc "merge is order-independent and additive"
            test_profile_merge_commutes;
          tc "run marks and waste accounting" test_profile_marks_and_waste;
          tc "profile artifact JSON shape" test_profile_json_shape;
        ] );
      ("log-setup", [ tc "level parsing" test_level_of_string ]);
      ( "pipeline",
        [
          tc "one span per phase" test_pipeline_spans;
          tc "expected series recorded" test_pipeline_metrics;
          tc "disabled run records nothing" test_pipeline_disabled_records_nothing;
        ] );
    ]
