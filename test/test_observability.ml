(* Observability tests: journal record stamps and the read-only loader,
   the offline stats reconstruction (including torn-tail journals from
   killed runs, checked against the --resume view of the same file), and
   the live progress heartbeat under an injected clock. *)

module Clock = Extr_telemetry.Clock
module Metrics = Extr_telemetry.Metrics
module Export = Extr_telemetry.Export
module Profile = Extr_telemetry.Profile
module Journal = Extr_resilience.Journal
module Corpus = Extr_corpus.Corpus
module Runner = Extr_eval.Runner
module Stats = Extr_eval.Stats
module Progress = Extr_eval.Progress

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "obs_test.%d.%s" (Unix.getpid ()) name)

let started app =
  Journal.Started { ev_app = app; ev_key = "k-" ^ app; ev_attempt = 1 }

let finished ?(status = "ok") ?(cached = false) ?(attempts = 1) ?(txs = 3) app
    =
  Journal.Finished
    {
      ev_app = app;
      ev_key = "k-" ^ app;
      ev_status = status;
      ev_cached = cached;
      ev_attempts = attempts;
      ev_txs = txs;
    }

(* ------------------------------------------------------------------ *)
(* Journal stamps and the read-only loader                            *)
(* ------------------------------------------------------------------ *)

let test_journal_stamps () =
  let path = tmp_path "stamps.jsonl" in
  let clock = Clock.fake ~start:1000.0 ~step:10.0 () in
  let j = Journal.create ~clock ~path ~config:"cfg" () in
  Journal.append j (started "a");
  Journal.append j (finished "a");
  match Journal.read ~path with
  | Error msg -> Alcotest.fail msg
  | Ok (config, events, _) ->
      check Alcotest.string "header config" "cfg" config;
      let stamps = List.map fst events in
      (* The header consumed clock tick 1000; records get 1010, 1020. *)
      check
        Alcotest.(list (option (float 0.0)))
        "records stamped by the journal clock"
        [ Some 1010.0; Some 1020.0 ]
        stamps;
      Sys.remove path

let test_read_tolerates_torn_tail_without_truncating () =
  let path = tmp_path "torn.jsonl" in
  let j =
    Journal.create ~clock:(Clock.fake ~start:5.0 ~step:1.0 ()) ~path
      ~config:"cfg" ()
  in
  Journal.append j (started "a");
  Journal.append j (finished "a");
  (* A kill mid-append: a partial record with no trailing newline. *)
  let oc = Out_channel.open_gen [ Open_append ] 0o644 path in
  Out_channel.output_string oc "{\"event\":\"finis";
  Out_channel.close oc;
  let size () = (Unix.stat path).Unix.st_size in
  let before = size () in
  (match Journal.read ~path with
  | Error msg -> Alcotest.fail msg
  | Ok (_, events, _) ->
      check Alcotest.int "torn tail skipped" 2 (List.length events));
  (* Unlike load, read must not repair the file. *)
  check Alcotest.int "file untouched by read" before (size ());
  (* The resume view of the same file truncates the tear and agrees on
     the surviving records. *)
  (match Journal.load ~path ~config:"cfg" () with
  | Error msg -> Alcotest.fail msg
  | Ok (_, events, _) ->
      check Alcotest.int "load sees the same records" 2 (List.length events);
      check Alcotest.bool "load truncates the tear" true (size () < before));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Offline stats                                                       *)
(* ------------------------------------------------------------------ *)

(* A journal as a killed run leaves it: two finished apps (one cached,
   one degraded after a retry), one crashed-then-quarantined app, one
   app still in flight when the run died, plus a torn trailing line. *)
let write_killed_journal path =
  let clock = Clock.fake ~start:100.0 ~step:5.0 () in
  let j = Journal.create ~clock ~path ~config:"cfg" () in
  Journal.append j (started "fast");
  Journal.append j (finished "fast");
  Journal.append j (started "slow");
  Journal.append j
    (Journal.Retried
       { ev_app = "slow"; ev_attempt = 2; ev_reason = "budget exhausted" });
  Journal.append j (finished ~status:"degraded" ~attempts:2 "slow");
  Journal.append j (finished ~status:"ok" ~cached:true ~attempts:0 "warm");
  Journal.append j (started "doomed");
  Journal.append j
    (Journal.Crashed
       {
         ev_app = "doomed";
         ev_phase = "pipeline.slicing";
         ev_exn = "Stack_overflow";
       });
  Journal.append j
    (finished ~status:"quarantined" ~attempts:2 ~txs:0 "doomed");
  Journal.append j (started "unfinished");
  let oc = Out_channel.open_gen [ Open_append ] 0o644 path in
  Out_channel.output_string oc "{\"event\":\"crashed\",\"app\":\"unfin";
  Out_channel.close oc

let test_stats_of_killed_journal () =
  let path = tmp_path "killed.jsonl" in
  write_killed_journal path;
  (match Stats.of_artifacts ~journals:[ path ] () with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
      check Alcotest.string "config" "cfg" t.Stats.rs_config;
      (* The summary counts journal-finished apps only: the in-flight
         app must not inflate any bucket. *)
      check Alcotest.string "summary footer"
        "4 apps: 2 ok, 1 degraded, 1 quarantined (1 from cache)"
        (Stats.summary_line t);
      let by_app a =
        List.find (fun x -> x.Stats.st_app = a) t.Stats.rs_apps
      in
      check Alcotest.string "unfinished app is in flight" "in-flight"
        (by_app "unfinished").Stats.st_status;
      (* Wall time from the stamps: "slow" started at tick 115 and
         finished at 125 (header=100, each record +5). *)
      check
        (Alcotest.option (Alcotest.float 1e-9))
        "wall from stamps" (Some 10.0) (by_app "slow").Stats.st_wall_s;
      (* Cached apps never started, so they carry no wall time. *)
      check
        (Alcotest.option (Alcotest.float 0.0))
        "cached app has no wall" None (by_app "warm").Stats.st_wall_s;
      check
        Alcotest.(list (pair string int))
        "retry ladder"
        [ ("budget exhausted", 1) ]
        t.Stats.rs_retries;
      check
        Alcotest.(list (pair string int))
        "crash taxonomy"
        [ ("pipeline.slicing", 1) ]
        t.Stats.rs_crashes;
      (* Slowest list is wall-descending (ties in journal order — the
         sort is stable) and excludes cached/in-flight apps. *)
      match Stats.slowest t with
      | [ (a1, w1); (a2, w2); (a3, w3) ] ->
          check Alcotest.string "slowest app" "slow" a1.Stats.st_app;
          check (Alcotest.float 1e-9) "slowest wall" 10.0 w1;
          check Alcotest.string "tie keeps journal order" "doomed"
            a2.Stats.st_app;
          check (Alcotest.float 1e-9) "tied wall" 10.0 w2;
          check Alcotest.string "third" "fast" a3.Stats.st_app;
          check (Alcotest.float 1e-9) "third wall" 5.0 w3
      | l -> Alcotest.failf "expected 3 slowest apps, got %d" (List.length l));
  Sys.remove path

let test_stats_matches_resume_view () =
  (* The stats view of a torn journal must agree with what --resume
     would replay: same finished set, same per-app status. *)
  let path = tmp_path "agree.jsonl" in
  write_killed_journal path;
  let stats =
    match Stats.of_artifacts ~journals:[ path ] () with
    | Ok t -> t
    | Error msg -> Alcotest.fail msg
  in
  (match Journal.load ~path ~config:"cfg" () with
  | Error msg -> Alcotest.fail msg
  | Ok (_, events, _) ->
      let resume_finished =
        Journal.finished events
        |> List.map (fun (app, ev) ->
               match ev with
               | Journal.Finished { ev_status; _ } -> (app, ev_status)
               | _ -> (app, "?"))
        |> List.sort compare
      in
      let stats_finished =
        stats.Stats.rs_apps
        |> List.filter_map (fun a ->
               if a.Stats.st_status = "in-flight" then None
               else Some (a.Stats.st_app, a.Stats.st_status))
        |> List.sort compare
      in
      check
        Alcotest.(list (pair string string))
        "stats and --resume agree on the finished set" resume_finished
        stats_finished);
  Sys.remove path

let test_stats_restarted_app_in_flight () =
  (* An app started again AFTER finishing (killed during a re-run) is in
     flight for --resume, and must be for stats too. *)
  let path = tmp_path "restart.jsonl" in
  let j =
    Journal.create ~clock:(Clock.fake ~start:1.0 ~step:1.0 ()) ~path
      ~config:"cfg" ()
  in
  Journal.append j (started "a");
  Journal.append j (finished "a");
  Journal.append j (started "a");
  (match Stats.of_artifacts ~journals:[ path ] () with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
      check Alcotest.string "re-started app back in flight"
        "0 apps: 0 ok, 0 degraded, 0 quarantined (0 from cache)"
        (Stats.summary_line t));
  Sys.remove path

let test_stats_phase_percentiles_from_metrics () =
  (* End to end through the real exporter: a pipeline.phase_us series
     written by Export.write_metrics comes back as a phase row with the
     p50/p95/p99 the exporter annotated. *)
  let jpath = tmp_path "ph.jsonl" in
  let j =
    Journal.create ~clock:(Clock.fake ~start:0.0 ~step:1.0 ()) ~path:jpath
      ~config:"cfg" ()
  in
  Journal.append j (started "a");
  Journal.append j (finished "a");
  let r = Metrics.create ~enabled:true () in
  let h =
    Metrics.histogram ~registry:r ~buckets:[ 100.0; 1000.0 ]
      "pipeline.phase_us"
  in
  for _ = 1 to 10 do
    Metrics.observe h ~labels:[ ("phase", "slicing") ] 50.0
  done;
  let mpath = tmp_path "ph-metrics.json" in
  Export.write_metrics mpath r;
  (match Stats.of_artifacts ~journals:[ jpath ] ~metrics:mpath () with
  | Error msg -> Alcotest.fail msg
  | Ok t -> (
      match t.Stats.rs_phases with
      | [ p ] ->
          check Alcotest.string "phase label" "slicing" p.Stats.ph_name;
          check Alcotest.int "phase count" 10 p.Stats.ph_count;
          check
            (Alcotest.option (Alcotest.float 1e-9))
            "p50 from the exporter" (Some 50.0) p.Stats.ph_p50_us
      | l ->
          Alcotest.failf "expected one phase row, got %d" (List.length l)));
  Sys.remove jpath;
  Sys.remove mpath

let test_stats_missing_journal () =
  match Stats.of_artifacts ~journals:[ tmp_path "nope.jsonl" ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing journal must be an error"

(* ------------------------------------------------------------------ *)
(* Live progress                                                       *)
(* ------------------------------------------------------------------ *)

let app_result ?(status = Runner.Ok) ?(cached = false) app =
  {
    Runner.ar_app = app;
    ar_status = status;
    ar_cached = cached;
    ar_resumed = false;
    ar_attempts = 1;
    ar_txs = 0;
    ar_degradations = [];
    ar_elapsed_s = 0.0;
    ar_crash = None;
    ar_report_json = None;
  }

let collect () =
  let buf = Buffer.create 256 in
  (buf, fun s -> Buffer.add_string buf s)

let test_progress_lines_mode () =
  let buf, emit = collect () in
  let clock = Clock.fake ~start:0.0 ~step:1.0 () in
  let p =
    Progress.create ~clock ~min_interval_s:0.0 ~mode:Progress.Lines ~total:3
      ~emit ()
  in
  Progress.on_state p ~busy:2 ~idle:0 ~pending:1;
  Progress.on_journal p (started "a");
  Progress.on_journal p (finished "a");
  Progress.on_result p (app_result "a");
  Progress.finish p;
  let out = Buffer.contents buf in
  let has needle =
    let n = String.length needle and h = String.length out in
    let rec go i = i + n <= h && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "structured lines" true (has "progress: ");
  check Alcotest.bool "counts" true (has "[1/3] 1 ok");
  check Alcotest.bool "worker shape" true (has "workers 2 busy/0 idle, 1 queued");
  (* One app took 2 clock ticks (started->finished), 2 busy workers, 2
     remaining: eta = 2 * 2 / 2 = 2s. *)
  check Alcotest.bool "eta from journal pairs" true (has "eta 2s");
  check Alcotest.bool "no tty control sequences" false (has "\r")

let test_progress_tty_mode () =
  let buf, emit = collect () in
  let p =
    Progress.create
      ~clock:(Clock.fake ~start:0.0 ~step:1.0 ())
      ~mode:Progress.Tty ~total:2 ~emit ()
  in
  Progress.on_result p (app_result "a");
  Progress.finish p;
  let out = Buffer.contents buf in
  check Alcotest.bool "rewrites in place" true
    (String.length out > 0 && out.[0] = '\r');
  let has needle =
    let n = String.length needle and h = String.length out in
    let rec go i = i + n <= h && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "erases to end of line" true (has "\x1b[K");
  check Alcotest.bool "eta unknown before first finish" true (has "eta --");
  (* finish clears the line so the summary table lands cleanly. *)
  check Alcotest.string "final clear" "\r\x1b[K"
    (String.sub out (String.length out - 4) 4)

let test_progress_rate_limit () =
  (* Lines mode must not emit on every event: with a 10s interval and a
     1s-step clock, 5 results produce at most one line plus the forced
     final one. *)
  let buf, emit = collect () in
  let p =
    Progress.create
      ~clock:(Clock.fake ~start:0.0 ~step:1.0 ())
      ~min_interval_s:10.0 ~mode:Progress.Lines ~total:5 ~emit ()
  in
  for i = 1 to 5 do
    Progress.on_result p (app_result (string_of_int i))
  done;
  Progress.finish p;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check Alcotest.bool "rate limited" true (List.length lines <= 2);
  (* The forced final line carries the complete picture. *)
  let last = List.nth lines (List.length lines - 1) in
  check Alcotest.bool "final line is complete" true
    (String.length last >= 14 && String.sub last 0 14 = "progress: [5/5")

(* ------------------------------------------------------------------ *)
(* Profile aggregation across jobs settings                           *)
(* ------------------------------------------------------------------ *)

(* The pool ships per-task profile deltas and merges them by addition,
   so a --jobs 4 corpus run must agree with --jobs 1 on every count
   (phase, method, fuel, visits, facts, waste rows).  Wall times are
   sums of per-worker measurements — merged, never compared. *)
let profile_counts jobs =
  let entries =
    match Corpus.case_studies () with
    | a :: b :: c :: d :: _ -> [ a; b; c; d ]
    | es -> es
  in
  Profile.reset Profile.default;
  Profile.set_enabled Profile.default true;
  Fun.protect ~finally:(fun () ->
      Profile.set_enabled Profile.default false;
      Profile.reset Profile.default)
  @@ fun () ->
  let options =
    {
      Runner.default_options with
      Runner.ro_jobs = jobs;
      ro_sleep = fst (Clock.sleep_recording ());
    }
  in
  (match Runner.run options entries with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let counts =
    List.map
      (fun (e : Profile.entry) ->
        Printf.sprintf "%s %s fuel=%d visits=%d facts=%d" e.Profile.e_phase
          e.e_meth e.e_fuel e.e_visits e.e_facts)
      (Profile.entries Profile.default)
  in
  let wastes =
    List.map
      (fun (w : Profile.waste) ->
        Printf.sprintf "%s touched=%d contributing=%d" w.Profile.w_scope
          w.w_touched w.w_contributing)
      (Profile.wastes Profile.default)
  in
  (counts, wastes)

let test_profile_jobs_deterministic () =
  let c1, w1 = profile_counts 1 in
  let c4, w4 = profile_counts 4 in
  check Alcotest.bool "profiler saw methods" true (c1 <> []);
  check Alcotest.bool "profiler saw waste rows" true (w1 <> []);
  check
    Alcotest.(list string)
    "method counts identical across jobs settings" c1 c4;
  check Alcotest.(list string) "waste rows identical across jobs settings" w1
    w4

let () =
  Alcotest.run "observability"
    [
      ( "journal",
        [
          tc "records stamped by the journal clock" test_journal_stamps;
          tc "read-only loader tolerates a torn tail"
            test_read_tolerates_torn_tail_without_truncating;
        ] );
      ( "stats",
        [
          tc "killed-run journal reconstructs" test_stats_of_killed_journal;
          tc "agrees with the --resume view" test_stats_matches_resume_view;
          tc "re-started app back in flight" test_stats_restarted_app_in_flight;
          tc "phase percentiles from metrics"
            test_stats_phase_percentiles_from_metrics;
          tc "missing journal is an error" test_stats_missing_journal;
        ] );
      ( "progress",
        [
          tc "structured lines off-tty" test_progress_lines_mode;
          tc "rewriting line on tty" test_progress_tty_mode;
          tc "rate limiting" test_progress_rate_limit;
        ] );
      ( "profile",
        [
          tc "jobs 1 and jobs 4 aggregates agree on every count"
            test_profile_jobs_deterministic;
        ] );
    ]
